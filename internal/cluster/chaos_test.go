package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hydradb/internal/client"
	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

// TestMoveShardKeepsDataReachable exercises planned migration: a partition
// relocates to another machine under a new epoch; clients recover via
// stale-epoch rerouting and pointer revalidation, and SWAT does not
// misinterpret the move as a failure.
func TestMoveShardKeepsDataReachable(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.ServerMachines = 3
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	c := cl.NewClient(0, client.Options{UseRDMARead: true})
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user%08d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pointer cache.
	for i := 0; i < n; i++ {
		testutil.Must1(c.Get([]byte(fmt.Sprintf("user%08d", i))))
	}

	victim := cl.ShardIDs()[0]
	epochBefore := cl.Epoch()
	if err := cl.MoveShard(victim, 2); err != nil {
		t.Fatal(err)
	}
	if cl.Epoch() != epochBefore+1 {
		t.Fatalf("epoch = %d, want %d", cl.Epoch(), epochBefore+1)
	}
	// No SWAT reaction for a planned move.
	time.Sleep(20 * time.Millisecond)
	if cl.Promotions.Load() != 0 {
		t.Fatal("SWAT treated the planned move as a failure")
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get %s after move: %q %v", k, v, err)
		}
	}
	if err := c.Put([]byte("after-move"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestMoveShardWithReplication(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.ServerMachines = 3
	cfg.ShardsPerMachine = 1
	cfg.Replicas = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	c := cl.NewClient(0, client.Options{})
	for i := 0; i < 100; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user%08d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	victim := cl.ShardIDs()[0]
	if err := cl.MoveShard(victim, 2); err != nil {
		t.Fatal(err)
	}
	// Replication keeps working on the moved shard...
	for i := 100; i < 150; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user%08d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// ...so a subsequent failure of the moved primary still loses nothing.
	if err := cl.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool { return cl.Promotions.Load() >= 1 }, "no promotion")
	for i := 0; i < 150; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get %s: %q %v", k, v, err)
		}
	}
}

func TestMoveShardValidation(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cl, err := New(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if err := cl.MoveShard(999, 0); err == nil {
		t.Fatal("moving unknown shard succeeded")
	}
	if err := cl.MoveShard(cl.ShardIDs()[0], 99); err == nil {
		t.Fatal("moving to unknown machine succeeded")
	}
}

// TestDoubleFailover kills a primary, waits for promotion, then kills the
// promoted primary too (replicas=2 so a second secondary remains).
func TestDoubleFailover(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.ServerMachines = 3
	cfg.ShardsPerMachine = 1
	cfg.Replicas = 2
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	c := cl.NewClient(0, client.Options{UseRDMARead: true})
	const n = 100
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user%08d", i)), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	victim := cl.ShardIDs()[0]
	if err := cl.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool { return cl.Promotions.Load() >= 1 }, "first promotion")

	// Write more through the promoted primary, then kill it as well.
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user%08d", i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool { return cl.Promotions.Load() >= 2 }, "second promotion")

	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		v, err := c.Get(k)
		if err != nil || string(v) != "v2" {
			t.Fatalf("get %s after double failover: %q %v", k, v, err)
		}
	}
}

// TestTrafficDuringFailover keeps clients hammering the cluster while a
// primary dies; every error must be transient and every acked write durable.
func TestTrafficDuringFailover(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.ServerMachines = 2
	cfg.ShardsPerMachine = 2
	cfg.Replicas = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	var mu sync.Mutex
	acked := map[string]string{}
	stopWriters := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		c := cl.NewClient(w, client.Options{UseRDMARead: true, RequestTimeout: 500 * time.Millisecond})
		go func(w int, c *client.Client) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopWriters:
					return
				default:
				}
				k := fmt.Sprintf("w%d-key%04d", w, i%200)
				v := fmt.Sprintf("v%d-%d", w, i)
				if err := c.Put([]byte(k), []byte(v)); err == nil {
					mu.Lock()
					acked[k] = v
					mu.Unlock()
				}
			}
		}(w, c)
	}

	time.Sleep(30 * time.Millisecond) // let traffic build
	if err := cl.KillShard(cl.ShardIDs()[1]); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool { return cl.Promotions.Load() >= 1 }, "no promotion")
	time.Sleep(30 * time.Millisecond) // traffic through the new topology
	close(stopWriters)
	wg.Wait()

	// Note: a PUT that timed out during the failover may retry and apply
	// twice — at-least-once semantics — but an *acked* PUT must be durable
	// and reflect that value or a LATER acked one for the same key. Since
	// each writer owns its keys and acked[k] holds the newest acked value,
	// reads must return it (no later unacked overwrite can exist once the
	// writer stopped: the final in-flight op may have applied without an
	// ack, so accept exactly one generation ahead).
	reader := cl.NewClient(0, client.Options{UseRDMARead: false})
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged during the chaos window")
	}
	for k, want := range acked {
		v, err := testutil.GetString(reader, k)
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if v != want {
			// Allow a newer value from the same writer's final unacked op.
			var wWriter, wIter int
			var gWriter, gIter int
			testutil.Must1(fmt.Sscanf(want, "v%d-%d", &wWriter, &wIter))
			testutil.Must1(fmt.Sscanf(v, "v%d-%d", &gWriter, &gIter))
			if gWriter != wWriter || gIter < wIter {
				t.Fatalf("key %s: got %q, acked %q", k, v, want)
			}
		}
	}
}

// TestSendRecvFailover covers the two-sided transport's failover path: the
// client's receive deadline expires against the dead shard, routing
// refreshes, and the retry lands on the promoted primary.
func TestSendRecvFailover(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.ServerMachines = 2
	cfg.ShardsPerMachine = 1
	cfg.Replicas = 1
	cfg.SendRecv = true
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	c := cl.NewClient(0, client.Options{RequestTimeout: 200 * time.Millisecond})
	const n = 60
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user%08d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	victim := cl.ShardIDs()[0]
	if err := cl.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool { return cl.Promotions.Load() >= 1 }, "no promotion")
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get %s after send/recv failover: %q %v", k, v, err)
		}
	}
}

// TestMoveShardRoutingStability pins the §5.1 property that a migration is
// invisible to routing: shard IDs anchor the consistent-hash ring, so
// moving a shard to another machine must not remap a single key — only the
// epoch changes, forcing clients onto fresh connections.
func TestMoveShardRoutingStability(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.ServerMachines = 3
	cfg.ShardsPerMachine = 2
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	before := map[string]uint32{}
	for i := 0; i < 512; i++ {
		k := fmt.Sprintf("route%05d", i)
		before[k] = cl.Ring().OwnerOfKey([]byte(k))
	}
	epoch := cl.Epoch()
	moved := cl.ShardIDs()[0]
	if err := cl.MoveShard(moved, 2); err != nil {
		t.Fatal(err)
	}
	if cl.Epoch() == epoch {
		t.Fatal("migration did not bump the routing epoch")
	}
	for k, owner := range before {
		if got := cl.Ring().OwnerOfKey([]byte(k)); got != owner {
			t.Fatalf("key %s moved shard %d -> %d during migration", k, owner, got)
		}
	}
}
