// Package arena implements the offset-addressed memory region that backs a
// hydradb shard.
//
// Each shard owns exactly one arena. The arena's byte area is registered with
// the (simulated) RDMA NIC as a memory region, so the 48-bit references the
// compact hash table stores — and the remote pointers handed to clients — are
// plain offsets into this region. Allocation is size-class segregated with
// per-class free lists, which matches the paper's out-of-place update
// discipline: updates allocate a fresh area and the old one is recycled only
// after its lease expires.
//
// A shard is single-threaded, so the arena is deliberately not synchronized;
// the zero-value is not usable, construct with New.
package arena

import (
	"errors"
	"fmt"

	"hydradb/internal/invariant"
)

// ErrOutOfMemory is returned when neither the free lists nor the bump region
// can satisfy an allocation.
var ErrOutOfMemory = errors.New("arena: out of memory")

// Allocation geometry. Size classes start at minClassBytes and every class is
// a multiple of 16, so the word groups class-rounded items occupy pack evenly
// into 64-byte cache lines instead of straddling them.
const (
	minClassBytes  = 32
	pageClassBytes = 4096    // first power-of-two-doubling class
	maxClassBytes  = 8 << 20 // largest class: the 4 MB MapReduce chunks fit
	cacheLineBytes = 64
)

// hydralint:assert cacheLineBytes%minClassBytes == 0
// hydralint:assert minClassBytes%16 == 0
// hydralint:assert pageClassBytes%cacheLineBytes == 0
// hydralint:assert maxClassBytes%cacheLineBytes == 0

// classSizes are the allocation size classes in bytes. The 16 B key + 32 B
// value items the paper evaluates land in the first classes; the tail classes
// cover the 4 MB chunks the MapReduce cache stores (§2.1).
//
// hydralint:offset-source class sizes are positive and bounded by maxClassBytes
var classSizes = buildClasses()

func buildClasses() []int {
	var cs []int
	for s := minClassBytes; s < pageClassBytes; {
		cs = append(cs, s)
		// 32,48,64,96,128,... alternate +50% / +33% growth keeps internal
		// fragmentation below ~34%.
		if s%3 == 0 {
			s = s * 4 / 3
		} else {
			s = s * 3 / 2
		}
	}
	for s := pageClassBytes; s <= maxClassBytes; s *= 2 {
		cs = append(cs, s)
	}
	return cs
}

// classOf returns the index of the smallest class holding n bytes, or -1.
func classOf(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

// Arena allocates offsets out of a single contiguous byte region.
type Arena struct {
	data   []byte  // hydralint:region the NIC-registered backing store
	bump   int     // next unallocated byte in the virgin region
	free   [][]int // per-class free offsets
	live   int     // bytes handed out (class-rounded)
	allocs int64
	frees  int64
	dbg    invariant.AllocTracker // armed only under -tags hydradebug
}

// New creates an arena of the given capacity in bytes.
func New(capacity int) *Arena {
	if capacity <= 0 {
		panic("arena: capacity must be positive")
	}
	return &Arena{
		data: make([]byte, capacity),
		free: make([][]int, len(classSizes)),
	}
}

// Capacity reports the total byte capacity.
func (a *Arena) Capacity() int { return len(a.data) }

// Live reports bytes currently allocated (rounded up to class sizes).
func (a *Arena) Live() int { return a.live }

// Allocs and Frees report cumulative operation counts.
func (a *Arena) Allocs() int64 { return a.allocs }

// Frees reports cumulative free operations.
func (a *Arena) Frees() int64 { return a.frees }

// Alloc reserves n bytes and returns the region offset. The usable capacity
// is the size class, at least n.
//
// hydralint:offset-source
func (a *Arena) Alloc(n int) (uint32, error) {
	if n <= 0 {
		return 0, fmt.Errorf("arena: invalid allocation size %d", n)
	}
	ci := classOf(n)
	if ci < 0 {
		return 0, fmt.Errorf("arena: allocation %d exceeds max class %d", n, classSizes[len(classSizes)-1])
	}
	size := classSizes[ci]
	if fl := a.free[ci]; len(fl) > 0 {
		off := fl[len(fl)-1]
		a.free[ci] = fl[:len(fl)-1]
		a.live += size
		a.allocs++
		if invariant.Enabled {
			a.dbg.OnAlloc(uint32(off), size)
		}
		return uint32(off), nil
	}
	if a.bump+size > len(a.data) {
		return 0, ErrOutOfMemory
	}
	off := a.bump
	a.bump += size
	a.live += size
	a.allocs++
	if invariant.Enabled {
		a.dbg.OnAlloc(uint32(off), size)
	}
	return uint32(off), nil
}

// Free returns the allocation at off (originally requested with size n) to
// its class free list. The bytes are zeroed so a stale RDMA Read of a
// recycled area observes cleared data rather than a ghost of the old item.
func (a *Arena) Free(off uint32, n int) {
	ci := classOf(n)
	if ci < 0 {
		panic(fmt.Sprintf("arena: free of oversized allocation %d", n))
	}
	size := classSizes[ci]
	if int(off)+size > len(a.data) {
		panic(fmt.Sprintf("arena: free out of range off=%d size=%d", off, size))
	}
	if invariant.Enabled {
		a.dbg.OnFree(off, size)
	}
	clear(a.data[off : int(off)+size])
	a.free[ci] = append(a.free[ci], int(off))
	a.live -= size
	a.frees++
}

// Bytes returns the n-byte window at off. The window aliases the region; the
// caller must respect the single-writer discipline. Under -tags hydradebug
// the window must lie within a live allocation — one-sided remote reads,
// which may legitimately observe recycled memory, go through Data instead.
//
// hydralint:hotpath
// hydralint:region-view
func (a *Arena) Bytes(off uint32, n int) []byte {
	if invariant.Enabled {
		a.dbg.CheckLive(off, n)
	}
	//hydralint:ignore region-bounds callers pass a live allocation's offset and class size; CheckLive vets the window under hydradebug
	return a.data[off : int(off)+n : int(off)+n]
}

// Data exposes the whole region for NIC registration.
//
// hydralint:region-view
func (a *Arena) Data() []byte { return a.data }

// ClassSize reports the rounded capacity an allocation of n bytes occupies.
func ClassSize(n int) int {
	ci := classOf(n)
	if ci < 0 {
		return -1
	}
	return classSizes[ci]
}

// MaxAlloc reports the largest supported allocation.
func MaxAlloc() int { return classSizes[len(classSizes)-1] }
