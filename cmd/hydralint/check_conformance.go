package main

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// model-conformance: keep the hydramc models in lockstep with the lock-free
// code they check. Each internal/modelcheck model declares a Footprint — the
// packages it covers, the nominal atomic words those packages may touch, and
// the invariant.SchedPoint tags they may yield at. This pass parses the
// declarations statically, extracts the real atomic footprint of every
// covered package (direct sync/atomic calls, methods on sync/atomic types,
// and constant SchedPoint tags, production files only), and diffs the two:
//
//	undeclared  an atomic word or tag appears in covered code but in no
//	            footprint covering that package — the model no longer
//	            exercises the full interleaving surface (silent rot)
//	stale       a footprint declares a word or tag no covered package
//	            accesses — the declaration has drifted from the code
//
// Refactors that add an atomic word or a scheduling point therefore fail
// lint until the owning model (and its Footprint) is updated.

// fpDecl is one parsed Footprint literal.
type fpDecl struct {
	p     *Package
	pos   token.Pos
	model string
	pkgs  []string
	words map[string]token.Pos
	tags  map[string]token.Pos
}

func runModelConformance(prog *Program, rep func(*Package) *Reporter) {
	fps := parseFootprints(prog)
	for _, e := range fps.errs {
		rep(e.p).report("model-conformance", e.pos, "%s", e.msg)
	}
	decls := fps.decls
	if len(decls) == 0 {
		return
	}
	covered := map[string][]*fpDecl{}
	for _, d := range decls {
		for _, path := range d.pkgs {
			covered[path] = append(covered[path], d)
		}
	}

	type site struct {
		p   *Package
		pos token.Pos
	}
	actualWords := map[string]map[string]site{} // pkg path -> word -> first site
	actualTags := map[string]map[string]site{}
	seen := map[string]bool{}
	for _, p := range prog.Pkgs {
		if covered[p.ImportPath] == nil || seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		words, tags := map[string]site{}, map[string]site{}
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, pos, ok := atomicAccessWord(p, call); ok {
					if _, dup := words[id]; !dup {
						words[id] = site{p, pos}
					}
					return true
				}
				if tag, pos, ok, bad := schedPointTag(prog, p, call); ok {
					if bad {
						rep(p).report("model-conformance", pos,
							"invariant.SchedPoint tag must be a constant string so model footprints can be checked statically")
					} else if _, dup := tags[tag]; !dup {
						tags[tag] = site{p, pos}
					}
				}
				return true
			})
		}
		actualWords[p.ImportPath] = words
		actualTags[p.ImportPath] = tags
	}

	// Direction 1: every actual word/tag must be declared by some footprint
	// covering its package.
	for path, words := range actualWords {
		for id, s := range words {
			if !declaresWord(covered[path], id) {
				rep(s.p).report("model-conformance", s.pos,
					"atomic word %s is not declared in any modelcheck footprint covering %s; update the owning model (%s) and its Footprint",
					id, path, modelNames(covered[path]))
			}
		}
	}
	for path, tags := range actualTags {
		for tag, s := range tags {
			if !declaresTag(covered[path], tag) {
				rep(s.p).report("model-conformance", s.pos,
					"SchedPoint tag %q is not declared in any modelcheck footprint covering %s; update the owning model (%s) and its Footprint",
					tag, path, modelNames(covered[path]))
			}
		}
	}

	// Direction 2: every declared word/tag must appear in some covered
	// package (only judged when at least one covered package was loaded).
	for _, d := range decls {
		loaded := false
		for _, path := range d.pkgs {
			if seen[path] {
				loaded = true
			}
		}
		if !loaded {
			continue
		}
		for id, pos := range d.words {
			found := false
			for _, path := range d.pkgs {
				if _, ok := actualWords[path][id]; ok {
					found = true
				}
			}
			if !found {
				rep(d.p).report("model-conformance", pos,
					"footprint for model %q declares atomic word %s, but no covered package accesses it; the declaration is stale", d.model, id)
			}
		}
		for tag, pos := range d.tags {
			found := false
			for _, path := range d.pkgs {
				if _, ok := actualTags[path][tag]; ok {
					found = true
				}
			}
			if !found {
				rep(d.p).report("model-conformance", pos,
					"footprint for model %q declares SchedPoint tag %q, but no covered package yields at it; the declaration is stale", d.model, tag)
			}
		}
	}
}

func declaresWord(decls []*fpDecl, id string) bool {
	for _, d := range decls {
		if _, ok := d.words[id]; ok {
			return true
		}
	}
	return false
}

func declaresTag(decls []*fpDecl, tag string) bool {
	for _, d := range decls {
		if _, ok := d.tags[tag]; ok {
			return true
		}
	}
	return false
}

func modelNames(decls []*fpDecl) string {
	var names []string
	for _, d := range decls {
		names = append(names, d.model)
	}
	return strings.Join(names, ", ")
}

// fpErr is a footprint parse problem; runModelConformance reports each as
// a model-conformance finding (the parse is memoized on the Program, so
// spec-drift can consume the declarations without double-reporting).
type fpErr struct {
	p   *Package
	pos token.Pos
	msg string
}

// fpParse is the memoized result of parsing every Footprint literal.
type fpParse struct {
	decls []*fpDecl
	errs  []fpErr
}

// parseFootprints statically reads every Footprint composite literal declared
// in an internal/modelcheck package. Entries that are not constant strings
// are findings: the conformance diff is only as trustworthy as the parse.
func parseFootprints(prog *Program) *fpParse {
	if prog.fps != nil {
		return prog.fps
	}
	fps := &fpParse{}
	seen := map[string]bool{}
	for _, p := range prog.Pkgs {
		if p.RelPath != "internal/modelcheck" || seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok || !isFootprintLit(p, cl) {
					return true
				}
				fps.decls = append(fps.decls, parseFootprintLit(p, fps, cl))
				return false // field literals inside are not footprints
			})
		}
	}
	prog.fps = fps
	return fps
}

// isFootprintLit reports whether cl's type is the Footprint struct declared
// in the same modelcheck package.
func isFootprintLit(p *Package, cl *ast.CompositeLit) bool {
	tv, ok := p.Info.Types[cl]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Footprint" && obj.Pkg() != nil && obj.Pkg() == p.Pkg
}

func (fps *fpParse) errf(p *Package, pos token.Pos, format string, args ...any) {
	fps.errs = append(fps.errs, fpErr{p: p, pos: pos, msg: fmt.Sprintf(format, args...)})
}

func parseFootprintLit(p *Package, fps *fpParse, cl *ast.CompositeLit) *fpDecl {
	d := &fpDecl{p: p, pos: cl.Pos(), words: map[string]token.Pos{}, tags: map[string]token.Pos{}}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			fps.errf(p, elt.Pos(),
				"Footprint literals must use keyed fields so the conformance pass can parse them statically")
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Model":
			if s, ok := constString(p, kv.Value); ok {
				d.model = s
			} else {
				fps.errf(p, kv.Value.Pos(), "Footprint.Model must be a literal string")
			}
		case "Packages":
			d.pkgs = parseStringList(p, fps, kv.Value, "Footprint.Packages", nil)
		case "AtomicWords":
			parseStringList(p, fps, kv.Value, "Footprint.AtomicWords", d.words)
		case "SchedTags":
			parseStringList(p, fps, kv.Value, "Footprint.SchedTags", d.tags)
		}
	}
	return d
}

// parseStringList reads a []string composite literal of constant strings,
// optionally recording each element's position into at.
func parseStringList(p *Package, fps *fpParse, e ast.Expr, what string, at map[string]token.Pos) []string {
	cl, ok := unparen(e).(*ast.CompositeLit)
	if !ok {
		fps.errf(p, e.Pos(), "%s must be a literal []string so it can be parsed statically", what)
		return nil
	}
	var out []string
	for _, elt := range cl.Elts {
		s, ok := constString(p, elt)
		if !ok {
			fps.errf(p, elt.Pos(), "%s entries must be literal strings", what)
			continue
		}
		out = append(out, s)
		if at != nil {
			if _, dup := at[s]; !dup {
				at[s] = elt.Pos()
			}
		}
	}
	return out
}

func constString(p *Package, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// atomicAccessWord resolves one call to a nominal atomic-word access: either
// a sync/atomic package call (atomic.StoreUint64(&x.f, v)) or a method on a
// sync/atomic type (x.f.Store(v)). Locals and unnameable words resolve false
// — they are not cross-thread state a model could cover.
func atomicAccessWord(p *Package, call *ast.CallExpr) (string, token.Pos, bool) {
	if isAtomicPkgCall(p, call) && len(call.Args) > 0 {
		if id, ok := mixedWordID(p, addrOperand(call.Args[0])); ok {
			return id, call.Pos(), true
		}
		return "", token.NoPos, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", token.NoPos, false
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", token.NoPos, false
	}
	recv := s.Recv()
	if ptr, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return "", token.NoPos, false
	}
	if id, ok := mixedWordID(p, sel.X); ok {
		return id, call.Pos(), true
	}
	return "", token.NoPos, false
}

// schedPointTag recognizes invariant.SchedPoint calls; bad is set when the
// tag argument is not a constant string.
func schedPointTag(prog *Program, p *Package, call *ast.CallExpr) (tag string, pos token.Pos, ok, bad bool) {
	callee, _, resolved := prog.resolveCallee(p, call)
	if !resolved || callee.Obj.FullName() != "hydradb/internal/invariant.SchedPoint" {
		return "", token.NoPos, false, false
	}
	if len(call.Args) != 1 {
		return "", call.Pos(), true, true
	}
	s, isConst := constString(p, call.Args[0])
	if !isConst {
		return "", call.Args[0].Pos(), true, true
	}
	return s, call.Pos(), true, false
}
