package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Check is one named rule. Run inspects a single package; RunProgram (for
// whole-program rules like mixed-access) sees every loaded package at once
// and reports through per-package reporters. A check sets one or the other.
// Short is the one-line blurb -listchecks renders into README's check
// table (a sync test keeps the two identical).
type Check struct {
	Name       string
	Desc       string
	Short      string
	Run        func(p *Package, r *Reporter)
	RunProgram func(prog *Program, rep func(*Package) *Reporter)
}

// allChecks is the registry, in the order findings group in the output.
var allChecks = []Check{
	{
		Name:  "clock-discipline",
		Desc:  "no direct time.Now/Since/Sleep in internal/ data-plane code; use timing.Clock",
		Short: "no wall-clock reads/sleeps in data-plane packages",
		Run:   runClockDiscipline,
	},
	{
		Name:  "shard-exclusivity",
		Desc:  "no go statements, mutexes, or channel sends on the shard hot path (§4.1.1)",
		Short: "no locks or goroutine launches on the shard hot path",
		Run:   runShardExclusivity,
	},
	{
		Name:  "atomic-word",
		Desc:  "values containing sync/atomic types must not be copied, ranged over, or aliased",
		Short: "atomic-bearing values never copied, ranged over, or aliased",
		Run:   runAtomicWord,
	},
	{
		Name:  "hotpath-alloc",
		Desc:  "functions marked hydralint:hotpath must not allocate",
		Short: "`hydralint:hotpath` functions stay allocation-free",
		Run:   runHotpathAlloc,
	},
	{
		Name:  "error-discipline",
		Desc:  "no discarded errors in internal/ packages",
		Short: "no discarded errors in `internal/`",
		Run:   runErrorDiscipline,
	},
	{
		Name:  "lease-discipline",
		Desc:  "every lock/lease acquire must be released on all paths (interprocedural via call summaries)",
		Short: "lock acquire/release balance, via call summaries",
		Run:   runLeaseDiscipline,
	},
	{
		Name:  "published-escape",
		Desc:  "no pointer into an RDMA-registered region may escape to an un-leased reference (interprocedural)",
		Short: "no region views escaping past publication",
		Run:   runPublishedEscape,
	},
	{
		Name:       "mixed-access",
		Desc:       "a word accessed with sync/atomic anywhere must never be accessed plainly (whole-program)",
		Short:      "no word sees both atomic and plain access, program-wide",
		RunProgram: runMixedAccess,
	},
	{
		Name:  "layout",
		Desc:  "compile-time wire-layout checks: hydralint:assert, hydralint:layout size=, hydralint:cacheline",
		Short: "`assert`/`layout`/`cacheline` pins with go/types sizes",
		Run:   runLayout,
	},
	{
		Name:       "region-bounds",
		Desc:       "one-sided offsets into RDMA regions must be provably in-bounds, aligned, and offset-source derived (def-use interpreter)",
		Short:      "every offset into an RDMA region proven in-bounds",
		RunProgram: runRegionBounds,
	},
	{
		Name:       "model-conformance",
		Desc:       "the atomic words and SchedPoint tags of covered packages must match the modelcheck Footprint declarations (whole-program)",
		Short:      "hydramc footprints match the real atomic surface",
		RunProgram: runModelConformance,
	},
	{
		Name:       "spec-order",
		Desc:       "the happens-before edges declared in protocolspec.Spec literals — payload-before-release, retract-before-free, apply-after-replicate — hold on every code path (spec-driven flow pass)",
		Short:      "declared protocol edges hold on every code path",
		RunProgram: runSpecOrder,
	},
	{
		Name:       "spec-coverage",
		Desc:       "every atomic store to a word declared in a protocolspec.Spec must be sanctioned by a Writers entry, a covering edge, or a publish/unpublish constant (whole-program)",
		Short:      "every store to a spec'd word is sanctioned by its spec",
		RunProgram: runSpecCoverage,
	},
	{
		Name:       "spec-drift",
		Desc:       "protocolspec.Spec declarations must name only atomic words, functions, marker constants, and hydramc footprints that still exist (whole-program)",
		Short:      "specs name only words, functions, and models that exist",
		RunProgram: runSpecDrift,
	},
	{
		Name:       "spec-guard",
		Desc:       "torn-read guards and reclamation gates declared in protocolspec.Spec must still be enforced by the named readers and reclaimers (whole-program)",
		Short:      "declared torn-read guards and reclamation gates still hold",
		RunProgram: runSpecGuard,
	},
	{
		Name:       "goroutine-lifecycle",
		Desc:       "every go statement must have a provable stop path: a cancellation signal triggered from a Stop/Close surface (whole-program; //hydralint:daemon opt-out)",
		Short:      "every `go` statement has a provable stop path",
		RunProgram: runGoroutineLifecycle,
	},
	{
		Name:       "wait-cycle",
		Desc:       "the static wait-for graph over mutexes, channels, and WaitGroups must be acyclic, and lock nesting must follow invariant.LockOrder (whole-program)",
		Short:      "no static wait cycles; lock nesting follows the declared DAG",
		RunProgram: runWaitCycle,
	},
	{
		Name:       "bounded-spin",
		Desc:       "busy-wait loops must both yield (Gosched/Sleep/SchedPoint) and have an exit (whole-program; //hydralint:spins opt-out)",
		Short:      "non-blocking loops yield *and* carry an exit condition",
		RunProgram: runBoundedSpin,
	},
	{
		Name:  "stale-suppression",
		Desc:  "hydralint:ignore directives that no longer match a finding must be removed (ratchet)",
		Short: "every `ignore` still filters a finding",
		// Runs built-in at the end of a full RunLint; no Run/RunProgram.
	},
}

// checkTableMarkdown renders the README check table from the registry;
// -listchecks prints it and a test pins README to it verbatim.
func checkTableMarkdown() string {
	var b strings.Builder
	b.WriteString("| check | enforces |\n|---|---|\n")
	for _, c := range allChecks {
		fmt.Fprintf(&b, "| `%s` | %s |\n", c.Name, c.Short)
	}
	return b.String()
}

func knownCheck(name string) bool {
	for _, c := range allChecks {
		if c.Name == name {
			return true
		}
	}
	return false
}

// resolveCheckSelection parses a -checks spec into the list RunLint runs.
// Entries are check names to run, `-name` entries are checks to skip, and
// `all` names the full registry. Positive names select exactly that subset;
// a spec of only negations (with an optional `all`) means "everything but
// these". A selection that resolves to the full registry returns nil, which
// RunLint treats as a full run (enabling the stale-suppression pass — a
// restricted run cannot tell whether a directive is truly unused).
func resolveCheckSelection(spec string) ([]string, error) {
	want := map[string]bool{}
	skip := map[string]bool{}
	positive := false
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		switch {
		case entry == "":
			continue
		case entry == "all":
			positive = true
			for _, c := range allChecks {
				want[c.Name] = true
			}
		case strings.HasPrefix(entry, "-"):
			name := entry[1:]
			if !knownCheck(name) {
				return nil, fmt.Errorf("unknown check %q (use -list)", name)
			}
			skip[name] = true
		default:
			if !knownCheck(entry) {
				return nil, fmt.Errorf("unknown check %q (use -list)", entry)
			}
			positive = true
			want[entry] = true
		}
	}
	if !positive {
		for _, c := range allChecks {
			want[c.Name] = true
		}
	}
	var only []string
	for _, c := range allChecks {
		if want[c.Name] && !skip[c.Name] {
			only = append(only, c.Name)
		}
	}
	if len(only) == len(allChecks) {
		return nil, nil // the full registry: a full run
	}
	if len(only) == 0 {
		return nil, fmt.Errorf("-checks selection %q selects no checks", spec)
	}
	return only, nil
}

// Diagnostic is one reported finding. Pkg and Symbol identify the finding
// nominally (import path + enclosing declaration), so downstream consumers —
// the budget ratchet, SARIF fingerprints — stay stable when code moves
// between files or lines.
type Diagnostic struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Check  string `json:"check"`
	Pkg    string `json:"pkg"`
	Symbol string `json:"symbol"`
	Msg    string `json:"msg"`
	// Spec names the protocolspec.Spec a spec-driven finding verifies
	// (empty for marker-implied protocols and non-spec checks). SARIF
	// emits it as an extra fingerprint so code-scanning dedup survives
	// check renames.
	Spec string `json:"spec,omitempty"`
}

// directive is one hydralint:ignore suppression for one check name. used is
// set when a finding is filtered through it; a full run reports directives
// that stayed unused (stale-suppression), so suppressions can only ratchet
// down as checks and code improve.
type directive struct {
	pos  token.Pos
	name string
	used bool
}

// Reporter collects diagnostics, filtering ones a `//hydralint:ignore`
// directive suppresses. A directive suppresses the named check(s) on its own
// line (trailing comment) and on the line directly below (comment above the
// offending statement). Multiple checks may be listed comma-separated.
type Reporter struct {
	fset *token.FileSet
	pkg  *Package // findings are attributed to this package's symbols
	base string   // paths are reported relative to this directory
	// suppressed maps file -> line -> check name -> the directive record
	// (shared between the directive's own line and the line below).
	suppressed map[string]map[int]map[string]*directive
	directives []*directive
	diags      []Diagnostic
}

func newReporter(p *Package, base string) *Reporter {
	return &Reporter{fset: p.Fset, pkg: p, base: base, suppressed: map[string]map[int]map[string]*directive{}}
}

// enclosingSymbol names the top-level declaration containing pos:
// "(*Mailbox).WriteVia" for methods, "RunLint" for functions, the first
// declared name for var/const/type groups, "" outside any declaration. The
// rendering is file- and line-independent, which is what makes budget keys
// and SARIF fingerprints survive refactors that only move code.
func enclosingSymbol(p *Package, pos token.Pos) string {
	for _, f := range p.Files {
		if pos < f.FileStart || pos > f.FileEnd {
			continue
		}
		for _, d := range f.Decls {
			start := d.Pos()
			// A directive above a declaration is its doc comment; attribute
			// it to the declaration, not to file scope.
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					start = d.Doc.Pos()
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					start = d.Doc.Pos()
				}
			}
			if pos < start || pos > d.End() {
				continue
			}
			switch d := d.(type) {
			case *ast.FuncDecl:
				return funcSymbol(d)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						return spec.Name.Name
					case *ast.ValueSpec:
						if len(spec.Names) > 0 {
							return spec.Names[0].Name
						}
					}
				}
			}
		}
		return ""
	}
	return ""
}

// funcSymbol renders a FuncDecl's nominal name, including the receiver type.
func funcSymbol(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := ""
	if se, ok := t.(*ast.StarExpr); ok {
		star, t = "*", se.X
	}
	name := "?"
	switch t := t.(type) {
	case *ast.Ident:
		name = t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := t.X.(*ast.Ident); ok {
			name = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			name = id.Name
		}
	}
	return "(" + star + name + ")." + fd.Name.Name
}

// commentText strips the comment markers and surrounding space from a
// comment, leaving the text a directive match runs against.
func commentText(c *ast.Comment) string {
	return strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
}

// directiveRest strips marker from the front of a comment's text, requiring a
// word boundary after it, so prose like "the hydralint:ignore, ..." mid-doc
// never reads as a directive. ok only when the text begins with the marker
// followed by end-of-comment or whitespace.
func directiveRest(text, marker string) (string, bool) {
	rest, found := strings.CutPrefix(text, marker)
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(strings.TrimSuffix(rest, "*/")), true
}

// indexSuppressions scans a file's comments for hydralint:ignore directives.
func (r *Reporter) indexSuppressions(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := directiveRest(commentText(c), "hydralint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue // malformed: no check named, suppresses nothing
			}
			pos := r.fset.Position(c.Pos())
			byLine := r.suppressed[pos.Filename]
			if byLine == nil {
				byLine = map[int]map[string]*directive{}
				r.suppressed[pos.Filename] = byLine
			}
			for _, name := range strings.Split(fields[0], ",") {
				d := &directive{pos: c.Pos(), name: name}
				r.directives = append(r.directives, d)
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := byLine[line]
					if set == nil {
						set = map[string]*directive{}
						byLine[line] = set
					}
					set[name] = d
				}
			}
		}
	}
}

func (r *Reporter) report(check string, pos token.Pos, format string, args ...any) {
	r.reportSpec(check, "", pos, format, args...)
}

// reportSpec is report with the finding attributed to a named
// protocolspec.Spec; suppression directives still match by check name.
func (r *Reporter) reportSpec(check, spec string, pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	if byLine, ok := r.suppressed[p.Filename]; ok {
		if d, ok := byLine[p.Line][check]; ok && d != nil {
			d.used = true
			return
		}
	}
	file := p.Filename
	if rel, err := filepath.Rel(r.base, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	d := Diagnostic{
		File:  file,
		Line:  p.Line,
		Col:   p.Column,
		Check: check,
		Msg:   fmt.Sprintf(format, args...),
		Spec:  spec,
	}
	if r.pkg != nil {
		d.Pkg = r.pkg.ImportPath
		d.Symbol = enclosingSymbol(r.pkg, pos)
	}
	r.diags = append(r.diags, d)
}

// reportStale emits a stale-suppression finding for every directive that
// filtered nothing. Directives naming stale-suppression itself are exempt
// (they are consumed by this very pass).
func (r *Reporter) reportStale() {
	for _, d := range r.directives {
		if d.used || d.name == "stale-suppression" {
			continue
		}
		r.report("stale-suppression", d.pos,
			"hydralint:ignore %s matches no finding; remove the stale suppression (the budget ratchet only goes down)", d.name)
	}
}

// Result is a full lint run: the findings plus the suppression census the
// budget ratchet compares against its checked-in baseline.
type Result struct {
	Diags        []Diagnostic
	Suppressions SuppressionCounts
}

// RunLint loads the packages matched by patterns (relative to dir), runs the
// selected checks (nil/empty = all), and returns findings sorted by position.
// With tests set, _test.go files are linted too (checks that only govern
// production code skip them individually via Package.isTestFile). The
// stale-suppression pass runs only on a full run (all checks, tests on),
// since a restricted run cannot tell whether a directive is truly unused.
func RunLint(dir string, patterns []string, only []string, tests bool) (*Result, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := load(abs, patterns, tests)
	if err != nil {
		return nil, err
	}
	prog := newProgram(pkgs)

	selected := allChecks
	if len(only) > 0 {
		want := map[string]bool{}
		for _, n := range only {
			want[n] = true
		}
		selected = nil
		for _, c := range allChecks {
			if want[c.Name] {
				selected = append(selected, c)
			}
		}
	}

	reporters := map[*Package]*Reporter{}
	rep := func(p *Package) *Reporter {
		r := reporters[p]
		if r == nil {
			r = newReporter(p, abs)
			for _, f := range p.Files {
				r.indexSuppressions(f)
			}
			reporters[p] = r
		}
		return r
	}
	for _, p := range pkgs {
		rep(p)
	}

	for _, c := range selected {
		if c.Run != nil {
			for _, p := range pkgs {
				c.Run(p, rep(p))
			}
		}
		if c.RunProgram != nil {
			c.RunProgram(prog, rep)
		}
	}

	if len(only) == 0 && tests {
		for _, p := range pkgs {
			rep(p).reportStale()
		}
	}

	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, reporters[p].diags...)
	}
	// Deterministic total order: position first, then check and message, so
	// two findings on the same line (two flagged arguments of one call) never
	// flap between runs and -json/-sarif output is byte-stable.
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		if diags[i].Check != diags[j].Check {
			return diags[i].Check < diags[j].Check
		}
		return diags[i].Msg < diags[j].Msg
	})
	return &Result{Diags: diags, Suppressions: countSuppressions(pkgs)}, nil
}
