package testutil

import (
	"testing"
	"time"

	"hydradb/internal/timing"
)

// WaitUntil polls cond (1ms cadence) until it holds, failing t with msg
// after d. Wall time, not a simulated clock: liveness machinery (SWAT
// reaction, promotion) runs on goroutines the caller cannot step.
func WaitUntil(t testing.TB, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	if !Eventually(d, cond) {
		t.Fatal(msg)
	}
}

// Eventually is WaitUntil returning the outcome instead of failing, for
// callers outside a test context (the chaos harness CLI).
func Eventually(d time.Duration, cond func() bool) bool {
	wall := timing.Wall()
	deadline := wall.Now() + d.Nanoseconds()
	for wall.Now() < deadline {
		if cond() {
			return true
		}
		timing.Sleep(1e6)
	}
	return false
}
