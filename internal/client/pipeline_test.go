package client

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"hydradb/internal/consistent"
	"hydradb/internal/kv"
	"hydradb/internal/message"
	"hydradb/internal/rdma"
	"hydradb/internal/shard"
	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

func TestMultiPutMultiGet(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: false})

	const n = 30
	var pairs []KV
	for i := 0; i < n; i++ {
		pairs = append(pairs, KV{
			Key: []byte(fmt.Sprintf("pk%03d", i)),
			Val: []byte(fmt.Sprintf("pv%03d", i)),
		})
	}
	if err := c.MultiPut(pairs); err != nil {
		t.Fatal(err)
	}

	var keys [][]byte
	for i := 0; i < n; i++ {
		keys = append(keys, []byte(fmt.Sprintf("pk%03d", i)))
	}
	keys = append(keys, []byte("absent"))
	vals, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != n+1 {
		t.Fatalf("got %d results, want %d", len(vals), n+1)
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("pv%03d", i)
		if string(vals[i]) != want {
			t.Fatalf("key %d: %q, want %q", i, vals[i], want)
		}
	}
	if vals[n] != nil {
		t.Fatalf("missing key returned %q", vals[n])
	}

	// Batched gets are message ops here, so parity must hold:
	// every GET is a pointer miss on the message-only configuration.
	snap := c.Counters().Snapshot()
	if snap.Gets != n+1 || snap.PointerMisses != n+1 {
		t.Fatalf("counters: gets=%d misses=%d, want %d each", snap.Gets, snap.PointerMisses, n+1)
	}
	if snap.Updates != n {
		t.Fatalf("updates=%d, want %d", snap.Updates, n)
	}
}

// TestPipelineSameKeyOrdering drives several ops against one key through a
// single batch; FIFO rings plus in-order issue must serialize them.
func TestPipelineSameKeyOrdering(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: false})
	k := []byte("ordered")
	res := c.Pipeline([]Op{
		{Code: message.OpPut, Key: k, Val: []byte("one")},
		{Code: message.OpGet, Key: k},
		{Code: message.OpPut, Key: k, Val: []byte("two")},
		{Code: message.OpGet, Key: k},
		{Code: message.OpDelete, Key: k},
		{Code: message.OpGet, Key: k},
	})
	if res[0].Err != nil || res[2].Err != nil || res[4].Err != nil {
		t.Fatalf("write errs: %v %v %v", res[0].Err, res[2].Err, res[4].Err)
	}
	if string(res[1].Val) != "one" {
		t.Fatalf("first get: %q", res[1].Val)
	}
	if string(res[3].Val) != "two" {
		t.Fatalf("second get: %q", res[3].Val)
	}
	if !res[4].Existed {
		t.Fatal("delete of live key reported !Existed")
	}
	if res[5].Err != ErrNotFound {
		t.Fatalf("get after delete: %v", res[5].Err)
	}
}

func TestPipelineWindowOption(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: false, PipelineWindow: 4})
	var pairs []KV
	for i := 0; i < 40; i++ {
		pairs = append(pairs, KV{Key: []byte(fmt.Sprintf("w%03d", i)), Val: []byte("v")})
	}
	if err := c.MultiPut(pairs); err != nil {
		t.Fatal(err)
	}
	var keys [][]byte
	for i := 0; i < 40; i++ {
		keys = append(keys, []byte(fmt.Sprintf("w%03d", i)))
	}
	vals, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if string(v) != "v" {
			t.Fatalf("key %d: %q", i, v)
		}
	}
}

// TestPipelineOneSidedHits: with warm pointers, a batched MultiGet completes
// one-sided at route time — no shard messages at all.
func TestPipelineOneSidedHits(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: true})
	var keys [][]byte
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("hot%02d", i))
		if err := c.Put(k, []byte("v")); err != nil { // Put caches the pointer
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	handledBefore := env.shard.Handled.Load()
	vals, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if string(v) != "v" {
			t.Fatalf("key %d: %q", i, v)
		}
	}
	if got := env.shard.Handled.Load() - handledBefore; got != 0 {
		t.Fatalf("shard handled %d messages during one-sided batch", got)
	}
	if hits := c.Counters().Snapshot().RDMAReadHits; hits != 10 {
		t.Fatalf("rdma hits = %d, want 10", hits)
	}
}

// TestPipelineWrongShardFallsBack: an epoch-stale batch reroutes through the
// synchronous path's refresh machinery and still completes.
func TestPipelineWrongShardFallsBack(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{
		UseRDMARead: false,
		Refresh: func() *RouteTable {
			tbl := *env.table
			tbl.Epoch = 7
			tbl.Endpoints = map[uint32]*shard.Endpoint{1: env.shard.Connect(env.cliNIC, false)}
			return &tbl
		},
	})
	env.shard.SetEpoch(7)
	var pairs []KV
	for i := 0; i < 8; i++ {
		pairs = append(pairs, KV{Key: []byte(fmt.Sprintf("e%d", i)), Val: []byte("v")})
	}
	if err := c.MultiPut(pairs); err != nil {
		t.Fatal(err)
	}
	if c.Counters().Snapshot().RoutingRetries == 0 {
		t.Fatal("routing retry not counted")
	}
	for i := 0; i < 8; i++ {
		if v, err := c.Get([]byte(fmt.Sprintf("e%d", i))); err != nil || string(v) != "v" {
			t.Fatalf("get e%d: %q %v", i, v, err)
		}
	}
}

// TestPipelineSendRecvFallsBack: the two-sided baseline transport has no
// mailbox ring, so batches run through the synchronous path transparently.
func TestPipelineSendRecvFallsBack(t *testing.T) {
	env := newLiveEnv(t, true)
	c := env.newClient(t, Options{UseRDMARead: false})
	pairs := []KV{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("b"), Val: []byte("2")},
	}
	if err := c.MultiPut(pairs); err != nil {
		t.Fatal(err)
	}
	vals, err := c.MultiGet([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals[0]) != "1" || string(vals[1]) != "2" || vals[2] != nil {
		t.Fatalf("vals: %q %q %q", vals[0], vals[1], vals[2])
	}
}

// TestPipelineLargeValues round-trips values near the slot capacity through
// a batched put+get.
func TestPipelineLargeValues(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: false})
	val := bytes.Repeat([]byte("y"), 32<<10)
	if err := c.MultiPut([]KV{{Key: []byte("big1"), Val: val}, {Key: []byte("big2"), Val: val}}); err != nil {
		t.Fatal(err)
	}
	vals, err := c.MultiGet([][]byte{[]byte("big1"), []byte("big2")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vals[0], val) || !bytes.Equal(vals[1], val) {
		t.Fatalf("large batched values corrupted: %d %d", len(vals[0]), len(vals[1]))
	}
}

// TestStaleSeqResponseDropped preloads the response ring with a response
// whose seq matches no outstanding request — the late reply of an abandoned
// attempt. The client must drop it instead of misattributing it to the next
// request (the request() seq-check regression).
func TestStaleSeqResponseDropped(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: false})
	ep := c.Table().Endpoints[1]

	stale := message.Response{Status: message.StatusNotFound, Seq: 999}
	buf := make([]byte, stale.EncodedSize())
	n := stale.EncodeTo(buf)
	if err := ep.RespBox.WriteLocal(buf[:n], stale.Seq); err != nil {
		t.Fatal(err)
	}

	// Without the seq check this Put would consume the NotFound response and
	// fail with ErrRemote.
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put across stale response: %v", err)
	}
	if v, err := c.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("get: %q %v", v, err)
	}
}

// TestTimeoutRetrySeqMisattribution reproduces the full bug scenario: a
// stalled shard (its ManualClock store clock never ticks and its loop is not
// running) forces timeout-triggered retries; when the shard finally starts,
// the late responses of the abandoned attempts arrive ahead of the current
// request's and must all be dropped by seq.
func TestTimeoutRetrySeqMisattribution(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	f := rdma.NewFabric(rdma.Config{})
	srvNIC := f.NewNIC("server")
	cliNIC := f.NewNIC("clients")
	sh := shard.New(shard.Config{
		ID:    1,
		NIC:   srvNIC,
		Store: kv.Config{ArenaBytes: 1 << 20, MaxItems: 2048, Clock: clk},
	})
	ring := testutil.Must1(consistent.Build([]uint32{1}, 16))
	table := &RouteTable{Ring: ring, Endpoints: map[uint32]*shard.Endpoint{
		1: sh.Connect(cliNIC, false),
	}}
	c := New(table, Options{
		Clock:          clk,
		UseRDMARead:    false,
		MaxRetries:     1,
		RequestTimeout: 5 * time.Millisecond,
		Refresh:        func() *RouteTable { return table },
	})

	// Shard is down: both attempts of this Get time out, leaving two
	// requests in the ring whose responses will arrive late.
	if _, err := c.Get([]byte("ghost")); err != ErrRetries {
		t.Fatalf("get against stalled shard: %v", err)
	}

	// Shard recovers and answers the abandoned requests (NotFound for
	// "ghost") before it sees anything new.
	go sh.Run()
	defer sh.Stop()

	// Without the seq check, the Put would match ghost's NotFound response
	// and report ErrRemote.
	if err := c.Put([]byte("real"), []byte("value")); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	if v, err := c.Get([]byte("real")); err != nil || string(v) != "value" {
		t.Fatalf("get after recovery: %q %v", v, err)
	}
	if rr := c.Counters().Snapshot().RoutingRetries; rr < 2 {
		t.Fatalf("routing retries = %d, want >= 2", rr)
	}
}
