package bench

import (
	"fmt"
	"strings"
	"testing"

	"hydradb/internal/testutil"
	"hydradb/internal/ycsb"
)

// tiny keeps harness tests fast while still exercising every code path.
var tiny = Scale{Name: "tiny", Records: 2000, Ops: 8000, Clients: 10}

func TestFig09ProducesAllRows(t *testing.T) {
	tbl := Fig09(tiny)
	if len(tbl.Rows) != 6*4 {
		t.Fatalf("rows = %d, want 24", len(tbl.Rows))
	}
	out := tbl.String()
	for _, want := range []string{"HydraDB", "Memcached", "Redis", "RAMCloud", "(a) zipf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// HydraDB must lead every workload: each baseline's "vs HydraDB" < 1x.
	for _, row := range tbl.Rows {
		if row[1] == "HydraDB" {
			continue
		}
		var ratio float64
		testutil.Must1(fmt.Sscanf(row[5], "%fx", &ratio))
		if ratio >= 1 {
			t.Fatalf("%s %s beats HydraDB: %s", row[0], row[1], row[5])
		}
	}
}

func TestFig10OrderingHolds(t *testing.T) {
	tbl := Fig10(tiny)
	if len(tbl.Rows) != 6*4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// For every workload: Write Only and Write+Read improve on Send/Recv.
	for _, row := range tbl.Rows {
		if row[1] == "RDMA Write Only" || row[1] == "RDMA Write + Read" {
			if !strings.HasPrefix(row[4], "+") {
				t.Fatalf("%s %s did not improve on Send/Recv: %s", row[0], row[1], row[4])
			}
		}
	}
}

func TestFig11Accounting(t *testing.T) {
	tbl := Fig11(tiny)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Zipfian 100% GET must out-hit uniform 100% GET (the paper's Fig. 11
	// asymmetry).
	var zipfRate, unifRate float64
	for _, row := range tbl.Rows {
		if row[0] == "(c) zipf 100%GET" {
			testutil.Must1(fmt.Sscanf(row[4], "%f%%", &zipfRate))
		}
		if row[0] == "(f) unif 100%GET" {
			testutil.Must1(fmt.Sscanf(row[4], "%f%%", &unifRate))
		}
	}
	if zipfRate <= unifRate {
		t.Fatalf("zipf hit rate %.1f%% !> uniform %.1f%%", zipfRate, unifRate)
	}
}

func TestSectionClaims(t *testing.T) {
	tbl := SectionClaims(tiny)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[1], "+") {
			t.Fatalf("Write vs Send/Recv not positive for %s: %s", row[0], row[1])
		}
		if !strings.HasPrefix(row[3], "+") {
			t.Fatalf("Single vs Pipeline not positive for %s: %s", row[0], row[3])
		}
	}
}

func TestFig12Tables(t *testing.T) {
	so := Fig12ScaleOut(tiny, ycsb.Uniform)
	if len(so.Rows) != 7 {
		t.Fatalf("scale-out rows = %d", len(so.Rows))
	}
	// Uniform 50/50 must scale: 7 servers >= 3x one server.
	var norm7 float64
	testutil.Must1(fmt.Sscanf(so.Rows[6][1], "%f", &norm7))
	if norm7 < 3 {
		t.Fatalf("uniform 50/50 scale-out at 7 servers only %.2fx", norm7)
	}
	su := Fig12ScaleUp(tiny, ycsb.Zipfian)
	if len(su.Rows) != 8 {
		t.Fatalf("scale-up rows = %d", len(su.Rows))
	}
}

func TestFig13Shape(t *testing.T) {
	tbl := Fig13(tiny)
	// 5 client counts x 5 rows (none + 2 modes x 2 replica counts).
	if len(tbl.Rows) != 5*5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// For each client count: logging overhead < strict overhead.
	byKey := map[string]float64{}
	for _, row := range tbl.Rows {
		var lat float64
		testutil.Must1(fmt.Sscanf(row[3], "%f", &lat))
		byKey[row[0]+"/"+row[1]+"/"+row[2]] = lat
	}
	for _, clients := range []string{"1", "4", "16"} {
		base := byKey[clients+"/none/0"]
		log1 := byKey[clients+"/RDMA logging/1"]
		strict1 := byKey[clients+"/strict req/ack/1"]
		if !(base < log1 && log1 < strict1) {
			t.Fatalf("clients=%s ordering: base=%.1f log=%.1f strict=%.1f",
				clients, base, log1, strict1)
		}
	}
}

func TestFig02Speedups(t *testing.T) {
	tbl := Fig02(tiny)
	if len(tbl.Rows) != len(fig02Apps)+1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var dfsio, spark float64
	var dfsioTCP float64
	for _, row := range tbl.Rows {
		if row[0] == "Hadoop TestDFSIO-read" {
			testutil.Must1(fmt.Sscanf(row[2], "%fx", &dfsio))
			testutil.Must1(fmt.Sscanf(row[3], "%fx", &dfsioTCP))
		}
		if row[0] == "Spark PageRank" {
			testutil.Must1(fmt.Sscanf(row[2], "%fx", &spark))
		}
	}
	// Paper shape: I/O-bound Hadoop apps near ~18x with RDMA, Spark apps a
	// few to tens of percent, and RDMA always above TCP.
	if dfsio < 8 || dfsio > 40 {
		t.Fatalf("TestDFSIO RDMA speedup %.1fx out of band", dfsio)
	}
	if dfsioTCP >= dfsio {
		t.Fatalf("TCP speedup %.1fx !< RDMA %.1fx", dfsioTCP, dfsio)
	}
	if spark < 1.0 || spark > 1.5 {
		t.Fatalf("Spark PageRank speedup %.2fx out of band", spark)
	}
}

func TestFig03Shape(t *testing.T) {
	tbl := Fig03(tiny)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	parse := func(i, col int) float64 {
		var v float64
		testutil.Must1(fmt.Sscanf(tbl.Rows[i][col], "%f", &v))
		return v
	}
	// HydraDB keeps scaling to 32 engines; the DB plateaus long before.
	h1, h32 := parse(0, 1), parse(5, 1)
	d8, d32 := parse(3, 2), parse(5, 2)
	if h32 < h1*16 {
		t.Fatalf("hydra did not scale: %f -> %f", h1, h32)
	}
	if d32 > d8*1.3 {
		t.Fatalf("DB did not plateau: %f -> %f", d8, d32)
	}
	// Order-of-magnitude gap at 32 engines (paper: "up to an order of
	// magnitude higher throughput").
	if h32/d32 < 5 {
		t.Fatalf("gap at 32 engines only %.1fx", h32/d32)
	}
}
