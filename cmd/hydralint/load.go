package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package under analysis.
type Package struct {
	ImportPath string
	// RelPath is the module-relative import path ("" for the module root,
	// "internal/kv" for hydradb/internal/kv). Path-scoped checks key off it
	// so linter fixtures living in other module roots behave identically.
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Info    *types.Info
	Pkg     *types.Package
}

// isInternal reports whether the package sits under the module's internal/
// tree — the scope of the data-plane checks.
func (p *Package) isInternal() bool {
	return p.RelPath == "internal" || strings.HasPrefix(p.RelPath, "internal/")
}

type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// load resolves patterns with the go tool, parses every matched module
// package, and type-checks it against the export data of its dependencies.
// Only non-test GoFiles of the default build configuration are analyzed:
// the checks govern production data-plane code, and build-tag-gated
// hydradebug variants cannot coexist in one type-check pass anyway.
func load(dir string, patterns []string) ([]*Package, error) {
	const fields = "-json=ImportPath,Dir,Export,Standard,GoFiles,Module,Error"

	// One walk with -deps -export compiles (or reuses the build cache for)
	// every dependency so the stdlib gc importer can read export data —
	// the stdlib-only substitute for golang.org/x/tools/go/packages.
	deps, err := goList(dir, append([]string{"-deps", "-export", fields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	targets, err := goList(dir, append([]string{fields}, patterns...)...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, t := range targets {
		if t.Standard || t.Error != nil && len(t.GoFiles) == 0 {
			continue
		}
		rel := ""
		if t.Module != nil && t.ImportPath != t.Module.Path {
			rel = strings.TrimPrefix(t.ImportPath, t.Module.Path+"/")
		}
		var files []*ast.File
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		var typeErrs []string
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				typeErrs = append(typeErrs, err.Error())
			},
		}
		pkg, _ := conf.Check(t.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s:\n\t%s", t.ImportPath, strings.Join(typeErrs, "\n\t"))
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			RelPath:    rel,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Info:       info,
			Pkg:        pkg,
		})
	}
	return out, nil
}
