package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// runPublishedEscape is an intra-procedural taint pass over consumers of the
// RDMA data plane. A handful of APIs return *views* into registered memory —
// arena bytes, memory-region slabs, decoded item key/value slices, mailbox
// slot bodies, kv.GetResult.Value — that are only safe to dereference while
// the protecting lease/guardian protocol holds (§4.2.2, §4.2.3). Stashing
// such a view in a field, a package-level variable, or a channel, or
// returning it from a function, publishes a pointer whose referent the owner
// may reclaim or rewrite at any moment.
//
// The pass marks those view expressions as taint sources, propagates taint
// through assignments, slicing, and composite literals to a fixpoint, and
// reports taint reaching an escape sink. Copies launder: string(b) and
// []byte(s) conversions, append onto an untainted base, and scalar indexing
// (a byte loaded from a view is a value, not a pointer).
//
// Scope: internal/ consumer packages. The owner packages that implement the
// protocols (arena, rdma, kv, message, hashtable, shard, replication,
// invariant, modelcheck) hold registered memory by design and are exempt, as
// are _test.go files. Functions whose documented contract is to return a
// view carry a `hydralint:aliases` marker in their doc comment. The analysis
// does not follow taint through calls to other functions — a view passed as
// an argument is the callee's problem under the callee's own analysis.
var escapeOwnerPackages = map[string]bool{
	"internal/arena":       true,
	"internal/rdma":        true,
	"internal/kv":          true,
	"internal/message":     true,
	"internal/hashtable":   true,
	"internal/shard":       true,
	"internal/replication": true,
	"internal/invariant":   true,
	"internal/modelcheck":  true,
}

func runPublishedEscape(p *Package, r *Reporter) {
	if !p.isInternal() || escapeOwnerPackages[p.RelPath] {
		return
	}
	for _, f := range p.Files {
		if p.isTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			e := &escapeFlow{p: p, tainted: map[*types.Var]bool{}}
			e.propagate(fd.Body)
			e.reportSinks(r, fd)
		}
	}
}

// escapeFlow is the per-function taint state. Closures are analyzed as part
// of their enclosing function: captured variables share the same objects.
type escapeFlow struct {
	p       *Package
	tainted map[*types.Var]bool
}

// propagate runs assignment-driven taint propagation to a fixpoint.
func (e *escapeFlow) propagate(body *ast.BlockStmt) {
	for round := 0; round < 16; round++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// Tuple form: x, y := f(buf) — every reference-typed
					// binding of a tainted producer is tainted.
					if e.taintedExpr(n.Rhs[0]) {
						for _, l := range n.Lhs {
							changed = e.taintLHS(l) || changed
						}
					}
					return true
				}
				for i, l := range n.Lhs {
					if i < len(n.Rhs) && e.taintedExpr(n.Rhs[i]) {
						changed = e.taintLHS(l) || changed
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					switch {
					case len(n.Values) == 1 && len(n.Names) > 1:
						if e.taintedExpr(n.Values[0]) {
							changed = e.taintIdent(name) || changed
						}
					case i < len(n.Values):
						if e.taintedExpr(n.Values[i]) {
							changed = e.taintIdent(name) || changed
						}
					}
				}
			case *ast.RangeStmt:
				// Ranging a tainted container taints reference-typed
				// element bindings ([]byte elements are scalars and stay
				// clean).
				if n.Value != nil && e.taintedExpr(n.X) {
					changed = e.taintLHS(n.Value) || changed
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// taintLHS marks an assignment target tainted when it is a local variable;
// non-local targets are sinks, handled separately.
func (e *escapeFlow) taintLHS(l ast.Expr) bool {
	if id, ok := l.(*ast.Ident); ok {
		return e.taintIdent(id)
	}
	return false
}

func (e *escapeFlow) taintIdent(id *ast.Ident) bool {
	if id.Name == "_" {
		return false
	}
	v := e.localVar(id)
	if v == nil || e.tainted[v] || !refType(v.Type()) {
		return false
	}
	e.tainted[v] = true
	return true
}

// localVar resolves an identifier to a function-local variable (params and
// receivers included), or nil for fields, package-level vars, and non-vars.
func (e *escapeFlow) localVar(id *ast.Ident) *types.Var {
	obj := e.p.Info.Defs[id]
	if obj == nil {
		obj = e.p.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() == e.p.Pkg.Scope() {
		return nil // package-level
	}
	return v
}

// taintedExpr reports whether evaluating x may yield a reference into
// RDMA-registered memory.
func (e *escapeFlow) taintedExpr(x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.Ident:
		v := e.localVar(x)
		return v != nil && e.tainted[v]
	case *ast.ParenExpr:
		return e.taintedExpr(x.X)
	case *ast.SelectorExpr:
		if e.isGetResultValue(x) {
			return true
		}
		return e.taintedExpr(x.X)
	case *ast.IndexExpr:
		if tv, ok := e.p.Info.Types[x]; ok && !refType(tv.Type) {
			return false // scalar load from a view is a copy
		}
		return e.taintedExpr(x.X)
	case *ast.SliceExpr:
		return e.taintedExpr(x.X)
	case *ast.StarExpr:
		return e.taintedExpr(x.X)
	case *ast.UnaryExpr:
		return e.taintedExpr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if e.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return e.taintedCall(x)
	}
	return false
}

func (e *escapeFlow) taintedCall(call *ast.CallExpr) bool {
	// Conversions copy (string <-> []byte) or reinterpret a value we can
	// resolve directly.
	if tv, ok := e.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return false
		}
		t := types.Unalias(tv.Type)
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return false // string(view) copies
		}
		if isByteSlice(t.Underlying()) {
			if at, ok := e.p.Info.Types[call.Args[0]]; ok {
				if b, ok := at.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return false // []byte(string) copies
				}
			}
		}
		return e.taintedExpr(call.Args[0])
	}

	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// append's result aliases its base; appending view bytes onto an
		// untainted base copies them out.
		if fun.Name == "append" {
			if _, ok := e.p.Info.Uses[fun].(*types.Builtin); ok && len(call.Args) > 0 {
				return e.taintedExpr(call.Args[0])
			}
		}
		return false
	case *ast.SelectorExpr:
		// kv.DecodeItem(buf) returns key/val slices aliasing buf.
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := e.p.Info.Uses[id].(*types.PkgName); ok {
				path := pn.Imported().Path()
				if strings.HasSuffix(path, "internal/kv") && fun.Sel.Name == "DecodeItem" {
					return len(call.Args) == 1 && e.taintedExpr(call.Args[0])
				}
				if path == "bytes" && fun.Sel.Name == "Clone" {
					return false
				}
				return false
			}
		}
		// View-returning methods of the owner packages.
		if recv, name, ok := e.methodRecv(fun); ok {
			switch {
			case recv == "internal/arena.Arena" && (name == "Bytes" || name == "Data"),
				recv == "internal/rdma.MemoryRegion" && name == "Data",
				recv == "internal/kv.Store" && name == "ArenaData",
				recv == "internal/message.Mailbox" && name == "Poll":
				return true
			}
		}
	}
	return false
}

// methodRecv resolves a method call's declared receiver to a
// "module-relative package path.TypeName" string.
func (e *escapeFlow) methodRecv(sel *ast.SelectorExpr) (recv, name string, ok bool) {
	s, found := e.p.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return "", "", false
	}
	fn, isFn := s.Obj().(*types.Func)
	if !isFn {
		return "", "", false
	}
	rv := fn.Type().(*types.Signature).Recv()
	if rv == nil {
		return "", "", false
	}
	t := rv.Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	path := named.Obj().Pkg().Path()
	if i := strings.Index(path, "internal/"); i >= 0 {
		path = path[i:]
	}
	return path + "." + named.Obj().Name(), fn.Name(), true
}

// isGetResultValue matches `res.Value` on a kv.GetResult — documented as
// aliasing the arena.
func (e *escapeFlow) isGetResultValue(sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Value" {
		return false
	}
	tv, ok := e.p.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/kv") &&
		named.Obj().Name() == "GetResult"
}

// reportSinks walks the body flagging tainted values reaching an escape.
func (e *escapeFlow) reportSinks(r *Reporter, fd *ast.FuncDecl) {
	aliases := docHasMarker(fd.Doc, "hydralint:aliases")
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			tuple := len(n.Rhs) == 1 && len(n.Lhs) > 1
			for i, l := range n.Lhs {
				var rhs ast.Expr
				if tuple {
					rhs = n.Rhs[0]
				} else if i < len(n.Rhs) {
					rhs = n.Rhs[i]
				}
				if rhs == nil || !e.taintedExpr(rhs) {
					continue
				}
				if sink := e.sinkDesc(l); sink != "" {
					r.report("published-escape", n.Pos(),
						"a view into an RDMA-registered region escapes to %s; copy it out (append to a fresh buffer) before publishing", sink)
				}
			}
		case *ast.SendStmt:
			if e.taintedExpr(n.Value) {
				r.report("published-escape", n.Pos(),
					"a view into an RDMA-registered region escapes into a channel send; copy it out before handing it to another goroutine")
			}
		case *ast.ReturnStmt:
			if aliases {
				return true
			}
			for _, res := range n.Results {
				if e.taintedExpr(res) {
					r.report("published-escape", n.Pos(),
						"returning a view into an RDMA-registered region; copy it out, or mark the function hydralint:aliases if returning a view is its contract")
				}
			}
		}
		return true
	})
}

// sinkDesc classifies an assignment target that outlives the protocol
// window; "" means the target is a plain local and not a sink.
func (e *escapeFlow) sinkDesc(l ast.Expr) string {
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" || e.localVar(l) != nil {
			return ""
		}
		if obj := e.p.Info.Uses[l]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Parent() == e.p.Pkg.Scope() {
				return "package-level variable " + l.Name
			}
		}
		return ""
	case *ast.SelectorExpr:
		// A field store: the struct (and thus the view) outlives this call.
		if s, ok := e.p.Info.Selections[l]; ok && s.Kind() == types.FieldVal {
			return "field " + l.Sel.Name
		}
		// Qualified package-level var (pkg.Var = view).
		if id, ok := l.X.(*ast.Ident); ok {
			if _, isPkg := e.p.Info.Uses[id].(*types.PkgName); isPkg {
				return "package-level variable " + l.Sel.Name
			}
		}
		return ""
	case *ast.StarExpr:
		return "memory behind a pointer"
	case *ast.IndexExpr:
		// Element store into a non-local container.
		if inner := e.sinkDesc(l.X); inner != "" {
			return "an element of " + inner
		}
		return ""
	}
	return ""
}

// refType reports whether values of t can carry a pointer into registered
// memory: slices, pointers, maps, channels, interfaces, unsafe pointers, and
// aggregates containing any of those. Scalars and strings cannot (string
// conversions copy).
func refType(t types.Type) bool {
	return refTypeSeen(t, map[*types.Named]bool{})
}

func refTypeSeen(t types.Type, seen map[*types.Named]bool) bool {
	if named, ok := types.Unalias(t).(*types.Named); ok {
		if seen[named] {
			return false
		}
		seen[named] = true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Array:
		return refTypeSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refTypeSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
