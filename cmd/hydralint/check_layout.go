package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"runtime"
	"strconv"
	"strings"
)

// runLayout verifies wire- and cache-layout invariants at lint time, before
// a miscounted constant ever reaches the fabric. The paper's layouts are
// load-bearing: a hashtable bucket is exactly one 64-byte cache line — an
// 8-byte header word plus seven 8-byte slots (§4.1.3) — the message ring's
// indicator words and the arena's word groups must stay cache-line aligned,
// and the signature/reference bit-packing constants must partition their
// word exactly. The pass is driven by three source annotations:
//
//	//hydralint:assert <const-expr>
//	    The expression is evaluated with go/types in the package scope at
//	    the comment's position (so file-scoped imports like unsafe resolve)
//	    and must be a boolean constant that is true. Use it to pin bit-width
//	    sums, mask consistency, and divisibility facts next to the constants
//	    they govern.
//
//	//hydralint:layout size=<n> [align=<n>]
//	    On a type declaration: the type's Sizeof (and optionally Alignof)
//	    under the gc sizes model for the current GOARCH must equal the
//	    annotation. The doc comment states the layout; the linter makes it
//	    non-fictional.
//
//	//hydralint:cacheline
//	    On a struct declaration: fields annotated `//hydralint:owner <name>`
//	    are checked for false sharing — two fields with different owners
//	    must not share a 64-byte cache line. This is the static complement
//	    of the mailbox's single-writer cursor split (§4.2.1): the reader's
//	    and writer's cursors each get their own line or the fabric pays
//	    coherence traffic on every advance.
//
// Malformed annotations (unparsable expression, bad size= value, owner on a
// non-cacheline struct's line boundary) are findings, not silent no-ops.
const cacheLineBytes = 64

func runLayout(p *Package, r *Reporter) {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}

	for _, f := range p.Files {
		// Free-floating compile-time assertions (the assert directive).
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				expr, ok := directiveRest(commentText(c), "hydralint:assert")
				if !ok {
					continue
				}
				if expr == "" {
					r.report("layout", c.Pos(), "hydralint:assert needs a constant boolean expression")
					continue
				}
				tv, err := types.Eval(p.Fset, p.Pkg, c.Pos(), expr)
				if err != nil {
					r.report("layout", c.Pos(), "hydralint:assert cannot evaluate %q: %v", expr, err)
					continue
				}
				if tv.Value == nil || tv.Value.Kind() != constant.Bool {
					r.report("layout", c.Pos(), "hydralint:assert %q is not a constant boolean", expr)
					continue
				}
				if !constant.BoolVal(tv.Value) {
					r.report("layout", c.Pos(), "compile-time assertion failed: %s", expr)
				}
			}
		}

		// hydralint:layout and hydralint:cacheline — type-attached checks.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				obj, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if line, pos, ok := markerLine(doc, "hydralint:layout"); ok {
					checkSizeMarker(r, sizes, obj, line, pos)
				}
				if _, pos, ok := markerLine(doc, "hydralint:cacheline"); ok {
					checkFalseSharing(p, r, sizes, obj, ts, pos)
				}
			}
		}
	}
}

// markerLine finds a doc-comment line starting with the marker and returns
// the text after it.
func markerLine(doc *ast.CommentGroup, marker string) (rest string, pos token.Pos, ok bool) {
	if doc == nil {
		return "", token.NoPos, false
	}
	for _, c := range doc.List {
		if r, found := directiveRest(commentText(c), marker); found {
			return r, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

func checkSizeMarker(r *Reporter, sizes types.Sizes, obj *types.TypeName, line string, pos token.Pos) {
	wantSize, wantAlign := int64(-1), int64(-1)
	for _, field := range strings.Fields(line) {
		key, val, found := strings.Cut(field, "=")
		if !found {
			r.report("layout", pos, "hydralint:layout: malformed clause %q (want size=<n> or align=<n>)", field)
			return
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			r.report("layout", pos, "hydralint:layout: %s=%q is not an integer", key, val)
			return
		}
		switch key {
		case "size":
			wantSize = n
		case "align":
			wantAlign = n
		default:
			r.report("layout", pos, "hydralint:layout: unknown clause %q (want size= or align=)", key)
			return
		}
	}
	if wantSize < 0 && wantAlign < 0 {
		r.report("layout", pos, "hydralint:layout needs at least one size=<n> or align=<n> clause")
		return
	}
	t := obj.Type()
	if got := sizes.Sizeof(t); wantSize >= 0 && got != wantSize {
		r.report("layout", pos, "%s is %d bytes, annotation pins size=%d; the wire layout and the struct disagree", obj.Name(), got, wantSize)
	}
	if got := sizes.Alignof(t); wantAlign >= 0 && got != wantAlign {
		r.report("layout", pos, "%s has alignment %d, annotation pins align=%d", obj.Name(), got, wantAlign)
	}
}

// checkFalseSharing verifies a hydralint:cacheline struct keeps fields with
// different declared owners on distinct 64-byte lines.
func checkFalseSharing(p *Package, r *Reporter, sizes types.Sizes, obj *types.TypeName, ts *ast.TypeSpec, pos token.Pos) {
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		r.report("layout", pos, "hydralint:cacheline annotates %s, which is not a struct", obj.Name())
		return
	}
	astStruct, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}

	// Owners by field name, read from //hydralint:owner lines in field docs
	// (or trailing comments).
	owners := map[string]string{}
	ownerPos := map[string]token.Pos{}
	for _, fld := range astStruct.Fields.List {
		owner, opos, found := markerLine(fld.Doc, "hydralint:owner")
		if !found {
			owner, opos, found = markerLine(fld.Comment, "hydralint:owner")
		}
		if !found {
			continue
		}
		if owner == "" {
			r.report("layout", opos, "hydralint:owner needs a goroutine/role name")
			continue
		}
		for _, name := range fld.Names {
			owners[name.Name] = owner
			ownerPos[name.Name] = opos
		}
	}
	if len(owners) == 0 {
		r.report("layout", pos, "hydralint:cacheline struct %s has no //hydralint:owner fields; annotate the per-goroutine fields or drop the marker", obj.Name())
		return
	}

	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := sizes.Offsetsof(fields)

	type lineOwner struct {
		owner  string
		field  string
		offset int64
	}
	byLine := map[int64]lineOwner{}
	for i, fv := range fields {
		owner, has := owners[fv.Name()]
		if !has {
			continue
		}
		// An owned field may span lines (padding arrays don't carry owners,
		// so this is the cursor-word case: one machine word per owner).
		first := offsets[i] / cacheLineBytes
		last := (offsets[i] + sizes.Sizeof(fv.Type()) - 1) / cacheLineBytes
		for line := first; line <= last; line++ {
			prev, taken := byLine[line]
			if !taken {
				byLine[line] = lineOwner{owner: owner, field: fv.Name(), offset: offsets[i]}
				continue
			}
			if prev.owner != owner {
				r.report("layout", ownerPos[fv.Name()],
					"false sharing in %s: field %s (owner %s, offset %d) and field %s (owner %s, offset %d) share the 64-byte cache line at offset %d; pad them onto distinct lines",
					obj.Name(), prev.field, prev.owner, prev.offset, fv.Name(), owner, offsets[i], line*cacheLineBytes)
			}
		}
	}
}
