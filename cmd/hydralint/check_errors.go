package main

import (
	"go/ast"
	"go/types"
)

// runErrorDiscipline flags discarded errors in internal/ packages: both the
// explicit `_ = f()` form and a bare expression-statement call whose result
// set includes an error. In a store that promises durability-before-ack
// (§5.2, logging-mode replication), a swallowed replication or flush error
// is a correctness bug, not a style issue — every discard must either be
// handled or carry an explicit `//hydralint:ignore error-discipline <why>`.
//
// `defer f()` and `go f()` are exempt: Go provides no direct way to consume
// their results, and the repo's deferred calls are cleanup paths. Also
// exempt are writes that cannot fail by documented contract: methods on
// strings.Builder and bytes.Buffer, and fmt.Fprint* into either of them.
func runErrorDiscipline(p *Package, r *Reporter) {
	if !p.isInternal() {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	implementsError := func(t types.Type) bool {
		return t != nil && types.AssignableTo(t, errType)
	}
	resultHasError := func(call *ast.CallExpr) (bool, string) {
		t := p.Info.TypeOf(call)
		switch t := t.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if implementsError(t.At(i).Type()) {
					return true, t.At(i).Type().String()
				}
			}
		default:
			if implementsError(t) {
				return true, t.String()
			}
		}
		return false, ""
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
						return true // conversion, not a call
					}
					if isInfallibleWrite(p, call) {
						return true
					}
					if has, _ := resultHasError(call); has {
						r.report("error-discipline", n.Pos(),
							"call discards its error result; handle it or annotate why it is safe to drop")
					}
				}
			case *ast.AssignStmt:
				// Single call with multiple results: match tuple components
				// against blank LHS positions.
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					call, ok := n.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					tuple, ok := p.Info.TypeOf(call).(*types.Tuple)
					if !ok || tuple.Len() != len(n.Lhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						if isBlank(lhs) && implementsError(tuple.At(i).Type()) {
							r.report("error-discipline", lhs.Pos(),
								"error result assigned to _; handle it or annotate why it is safe to drop")
						}
					}
					return true
				}
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if isBlank(lhs) && implementsError(p.Info.TypeOf(n.Rhs[i])) {
						r.report("error-discipline", lhs.Pos(),
							"error value assigned to _; handle it or annotate why it is safe to drop")
					}
				}
			}
			return true
		})
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isInfallibleWrite exempts writes whose error is nil by documented
// contract: any method on strings.Builder / bytes.Buffer, and
// fmt.Fprint/Fprintf/Fprintln whose io.Writer is one of those.
func isInfallibleWrite(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return isBuilderLike(s.Recv())
	}
	// fmt.Fprint* with an infallible writer argument.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Fprint", "Fprintf", "Fprintln":
				if len(call.Args) > 0 {
					return isBuilderLike(p.Info.TypeOf(call.Args[0]))
				}
			}
		}
	}
	return false
}

func isBuilderLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path, name := obj.Pkg().Path(), obj.Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}
