//go:build hydradebug

package rdma_test

import (
	"testing"

	"hydradb/internal/kv"
	"hydradb/internal/rdma"
	"hydradb/internal/timing"
)

// TestGuardianCorruptionDetected registers a kv store's region with the
// fabric and pushes a value that is neither GuardianLive nor GuardianDead
// into a guardian word with a one-sided write — the torn/misdirected-write
// scenario of §4.2.3. The hydradebug validator installed by kv must trap it
// at the fabric boundary.
func TestGuardianCorruptionDetected(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	store := kv.NewStore(kv.Config{Clock: clk, ArenaBytes: 1 << 20, MaxItems: 1 << 10})
	res, _, err := store.Put([]byte("key"), []byte("val"))
	if err != nil {
		t.Fatal(err)
	}

	fabric := rdma.NewFabric(rdma.Config{})
	server := fabric.NewNIC("server")
	clientN := fabric.NewNIC("client")
	mr := server.Register(store.ArenaData(), store.Words())
	qp, _ := rdma.Connect(clientN, server, 16)

	// A well-formed one-sided read of guardian + lease passes validation.
	dst := make([]byte, res.Ptr.DataLen)
	if _, words, err := qp.Read(mr, int(res.Ptr.DataOff), dst,
		int(res.Ptr.MetaIdx), int(res.Ptr.MetaIdx)+1); err != nil {
		t.Fatal(err)
	} else if words[0] != kv.GuardianLive {
		t.Fatalf("guardian = %#x, want live", words[0])
	}

	defer func() {
		if recover() == nil {
			t.Fatal("corrupting a guardian word via WriteWord did not panic under hydradebug")
		}
	}()
	_ = qp.WriteWord(mr, int(res.Ptr.MetaIdx), 0xdeadbeef)
}
