// Command hydra-demo runs a live in-process HydraDB cluster and exposes a
// tiny REPL over stdin — the real middleware stack (polled mailboxes,
// RDMA-Read GETs, replication, SWAT failover), not the simulator.
//
// Commands:
//
//	put <key> <value>
//	get <key>
//	del <key>
//	renew <key>
//	stats
//	shards
//	kill <shardID>     (with -replicas > 0 the SWAT promotes a secondary)
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hydradb"
)

func main() {
	var (
		servers  = flag.Int("servers", 2, "server machines")
		shards   = flag.Int("shards", 2, "shards per machine")
		replicas = flag.Int("replicas", 1, "secondaries per primary")
	)
	flag.Parse()

	opts := hydradb.DefaultOptions()
	opts.ServerMachines = *servers
	opts.ShardsPerMachine = *shards
	opts.Replicas = *replicas
	opts.ArenaBytesPerShard = 16 << 20
	opts.MaxItemsPerShard = 1 << 16
	db, err := hydradb.Start(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	c := db.NewClient()

	fmt.Printf("%v ready — type 'help'\n", db)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("hydra> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "help":
			fmt.Println("put <k> <v> | get <k> | del <k> | renew <k> | stats | shards | kill <id> | quit")
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			if err := c.Put([]byte(fields[1]), []byte(strings.Join(fields[2:], " "))); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("OK")
			}
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, err := c.Get([]byte(fields[1]))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("%q\n", v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			if err := c.Delete([]byte(fields[1])); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("OK")
			}
		case "renew":
			if len(fields) != 2 {
				fmt.Println("usage: renew <key>")
				continue
			}
			if err := c.Renew([]byte(fields[1])); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("lease renewed")
			}
		case "stats":
			s := db.Stats()
			fmt.Printf("server: gets=%d updates=%d inserts=%d deletes=%d reclaims=%d replications=%d\n",
				s.Gets, s.Updates, s.Inserts, s.Deletes, s.Reclaims, s.Replications)
			cs := c.Counters().Snapshot()
			fmt.Printf("client: rdma-read hits=%d invalid=%d misses=%d renewals=%d reroutes=%d\n",
				cs.RDMAReadHits, cs.RDMAReadStale, cs.PointerMisses, cs.LeaseRenewals, cs.RoutingRetries)
		case "shards":
			fmt.Println("shard IDs:", db.ShardIDs(), "epoch:", db.Cluster().Epoch())
		case "kill":
			if len(fields) != 2 {
				fmt.Println("usage: kill <shardID>")
				continue
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				fmt.Println("bad shard id")
				continue
			}
			if err := db.KillShard(uint32(id)); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("killed; SWAT reacting...")
			}
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command; try 'help'")
		}
	}
}
