package simcluster

import (
	"fmt"

	"hydradb/internal/consistent"
	"hydradb/internal/kv"
	"hydradb/internal/lease"
	"hydradb/internal/message"
	"hydradb/internal/sim"
	"hydradb/internal/stats"
	"hydradb/internal/ycsb"
)

// Mode selects the HydraDB design-choice configuration of Fig. 10.
type Mode int

// Modes, in the paper's incremental order.
const (
	// ModeSendRecv: two-sided verbs message passing (baseline of §6.2).
	ModeSendRecv Mode = iota
	// ModeWriteOnly: RDMA-Write driven message passing, no pointer cache.
	ModeWriteOnly
	// ModeWriteRead: + client remote-pointer caching with RDMA Read GETs.
	ModeWriteRead
	// ModePipelineWrite: RDMA Write messaging under the decoupled
	// pipelined execution model (§6.2.1).
	ModePipelineWrite
	// ModeTCP: the TCP/IP transport HydraDB also supports ("we do not
	// present its performance in this paper", §6) — kernel-crossing message
	// passing with the same single-threaded shards, no one-sided reads.
	ModeTCP
)

// String names the mode with the paper's series labels.
func (m Mode) String() string {
	switch m {
	case ModeSendRecv:
		return "Send/Recv"
	case ModeWriteOnly:
		return "RDMA Write Only"
	case ModeWriteRead:
		return "RDMA Write + Read"
	case ModePipelineWrite:
		return "Pipeline + RDMA Write"
	case ModeTCP:
		return "HydraDB(TCP)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// HydraConfig describes one simulated deployment + workload run.
type HydraConfig struct {
	// Machines is the testbed size (paper: 8).
	Machines int
	// ServerMachines lists machine indices hosting shards.
	ServerMachines []int
	// ShardsPerMachine primaries per server machine.
	ShardsPerMachine int
	// Clients is the total client count; they are spread round-robin over
	// ClientMachines (collocation with servers happens naturally when the
	// sets overlap, as in the paper's 7-server scale-out).
	Clients        int
	ClientMachines []int
	// Mode selects the design-choice configuration.
	Mode Mode
	// SharedCache shares the pointer cache among clients on one machine
	// (§4.2.4); off = per-client caches.
	SharedCache bool
	// Replicas per primary; Strict selects request/ack (Fig. 13).
	Replicas int
	Strict   bool
	// SubShards enables the §6.3 sub-sharding extension: each shard
	// *instance* keeps the client connections (QPs scale with instances,
	// not cores) and demultiplexes requests onto SubShards independent
	// sub-shard cores. 0/1 = classic one-process-per-core shards.
	SubShards int
	// LeasePolicy overrides the default 1–64 s popularity-scaled policy
	// (zero value = lease.DefaultPolicy) — the lease ablation knob.
	LeasePolicy lease.Policy
	// NUMAInterleaved disables the §4.1.2 NUMA awareness: every shard
	// memory operation pays the remote-node penalty.
	NUMAInterleaved bool
	// Workload is the pre-generated request stream.
	Workload *ycsb.Workload
	// Cost is the testbed cost model.
	Cost CostModel
	// Seed drives simulation randomness.
	Seed int64
	// MaxItemsPerShard sizes stores; defaults to records*3/shards.
	MaxItemsPerShard int
}

type simShard struct {
	id    uint32
	m     *machine
	cpu   *sim.Resource
	store *kv.Store
	// inst is the shared connection-owning instance thread when the
	// sub-sharding extension is enabled (§6.3); nil otherwise.
	inst *sim.Resource
	// pipelined-mode stages
	dispatch, workers, lock *sim.Resource
	// replication
	secMachines []*machine
	secApply    []*sim.Resource
}

// HydraSim is one run instance.
type HydraSim struct {
	cfg      HydraConfig
	eng      *sim.Engine
	machines []*machine
	shards   map[uint32]*simShard
	ring     *consistent.Ring
	clients  []*simClient

	nextOp    int
	completed int64
	getHist   *stats.Histogram
	updHist   *stats.Histogram

	hits, stale, misses int64
	replicated          int64
	putErrors           int64
	maxPending          int
	endNs               int64 // virtual time of the last op completion
}

// NewHydraSim builds the deployment and preloads the records.
func NewHydraSim(cfg HydraConfig) (*HydraSim, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("simcluster: workload required")
	}
	if cfg.Machines <= 0 {
		cfg.Machines = 8
	}
	if cfg.ShardsPerMachine <= 0 {
		cfg.ShardsPerMachine = 4
	}
	if len(cfg.ServerMachines) == 0 {
		cfg.ServerMachines = []int{0}
	}
	if len(cfg.ClientMachines) == 0 {
		for i := 1; i < cfg.Machines; i++ {
			cfg.ClientMachines = append(cfg.ClientMachines, i)
		}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 50
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}

	h := &HydraSim{
		cfg:     cfg,
		eng:     sim.NewEngine(cfg.Seed),
		shards:  map[uint32]*simShard{},
		getHist: stats.NewHistogram(),
		updHist: stats.NewHistogram(),
	}
	for i := 0; i < cfg.Machines; i++ {
		h.machines = append(h.machines, &machine{
			id:  i,
			nic: sim.NewResource(h.eng, fmt.Sprintf("nic-%d", i), 1),
		})
	}

	subShards := cfg.SubShards
	if subShards <= 0 {
		subShards = 1
	}
	if subShards > 1 && cfg.Mode == ModePipelineWrite {
		return nil, fmt.Errorf("simcluster: sub-sharding and the pipelined model are mutually exclusive")
	}

	// Shards. With sub-sharding, ShardsPerMachine counts *instances*; every
	// instance hosts SubShards independent partitions behind one set of
	// connections (§6.3).
	var ids []uint32
	next := uint32(1)
	records := cfg.Workload.Spec.Records
	totalInstances := len(cfg.ServerMachines) * cfg.ShardsPerMachine
	totalShards := totalInstances * subShards
	maxItems := cfg.MaxItemsPerShard
	if maxItems == 0 {
		// Live records plus headroom for every possible detached
		// out-of-place update (zipfian can concentrate them on one shard).
		// Arenas are virtual memory — pages commit only when touched — so
		// generous sizing is cheap.
		maxItems = int(records)*2/totalShards + cfg.Workload.Spec.Operations/2 + 4096
	}
	itemBytes := kv.ItemSize(cfg.Workload.Spec.KeyLen, cfg.Workload.Spec.ValueLen)
	for _, mi := range cfg.ServerMachines {
		for s := 0; s < cfg.ShardsPerMachine; s++ {
			var inst *sim.Resource
			if subShards > 1 {
				inst = sim.NewResource(h.eng, fmt.Sprintf("inst-%d-%d", mi, s), 1)
			}
			for sub := 0; sub < subShards; sub++ {
				id := next
				next++
				ids = append(ids, id)
				m := h.machines[mi]
				sh := &simShard{
					id:   id,
					m:    m,
					inst: inst,
					cpu:  sim.NewResource(h.eng, fmt.Sprintf("shard-%d", id), 1),
					store: kv.NewStore(kv.Config{
						ArenaBytes: maxItems * (itemBytes + 64),
						MaxItems:   maxItems,
						Policy:     cfg.LeasePolicy,
						Clock:      h.eng.Clock(),
					}),
				}
				if cfg.Mode == ModePipelineWrite {
					sh.dispatch = sim.NewResource(h.eng, "dispatch", 2)
					sh.workers = sim.NewResource(h.eng, "workers", 2)
					sh.lock = sim.NewResource(h.eng, "lock", 1)
				}
				for r := 0; r < cfg.Replicas; r++ {
					sm := h.machines[(mi+1+r)%cfg.Machines]
					sh.secMachines = append(sh.secMachines, sm)
					sh.secApply = append(sh.secApply, sim.NewResource(h.eng, "sec-apply", 1))
				}
				h.shards[id] = sh
			}
		}
	}
	ring, err := consistent.Build(ids, 0)
	if err != nil {
		return nil, err
	}
	h.ring = ring

	// Connection accounting for the QP-count overhead: every client holds a
	// QP per shard *instance* (sub-sharding's whole point is cutting this
	// factor); replication adds primary<->secondary pairs.
	perInstanceOnce := map[*sim.Resource]bool{}
	for _, sh := range h.shards {
		if sh.inst == nil {
			sh.m.qps += cfg.Clients
		} else if !perInstanceOnce[sh.inst] {
			perInstanceOnce[sh.inst] = true
			sh.m.qps += cfg.Clients
		}
		for _, sm := range sh.secMachines {
			sh.m.qps++
			sm.qps++
		}
	}
	for i := 0; i < cfg.Clients; i++ {
		m := h.machines[cfg.ClientMachines[i%len(cfg.ClientMachines)]]
		m.qps += totalInstances
		h.clients = append(h.clients, &simClient{id: i, m: m})
	}
	// Shared caches per machine (§4.2.4).
	if cfg.SharedCache {
		perMachine := map[int]map[string]*ptrEntry{}
		for _, cl := range h.clients {
			c, ok := perMachine[cl.m.id]
			if !ok {
				c = map[string]*ptrEntry{}
				perMachine[cl.m.id] = c
			}
			cl.cache = c
		}
	} else {
		for _, cl := range h.clients {
			cl.cache = map[string]*ptrEntry{}
		}
	}

	// Preload records (the YCSB load phase; not measured).
	val := cfg.Workload.Value()
	for i := int64(0); i < records; i++ {
		key := cfg.Workload.Key(i)
		sh := h.shards[h.ring.OwnerOfKey(key)]
		if _, _, err := sh.store.Put(key, val); err != nil {
			return nil, fmt.Errorf("simcluster: preload: %w", err)
		}
	}
	return h, nil
}

// Engine exposes the event engine (tests).
func (h *HydraSim) Engine() *sim.Engine { return h.eng }

// nicCost is the per-op NIC service time on machine m.
func (h *HydraSim) nicCost(m *machine, bytes int) int64 {
	c := &h.cfg.Cost
	cost := c.NICOpNs + int64(float64(bytes)*c.NICByteNs)
	if extra := m.qps - c.QPThreshold; extra > 0 && c.QPExtraNs > 0 {
		cost += int64(float64(extra) * c.QPExtraNs)
	}
	return cost
}

// hop moves bytes from machine a to machine b: source NIC service, wire
// propagation, destination NIC service, then cont. Collocated endpoints
// still pay both NIC passes on the shared device (loopback through the HCA).
// In ModeTCP every message additionally pays the kernel/protocol latency
// and the higher per-byte copy cost of the IPoIB stack.
func (h *HydraSim) hop(a, b *machine, bytes int, cont func()) {
	c := &h.cfg.Cost
	srcCost, dstCost := h.nicCost(a, bytes), h.nicCost(b, bytes)
	wire := c.WireNs
	if h.cfg.Mode == ModeTCP {
		extra := int64(float64(bytes) * (c.TCPByteNs - c.NICByteNs))
		if extra > 0 {
			srcCost += extra
			dstCost += extra
		}
		wire += c.TCPExtraNs
	}
	rawHop(h.eng, a, b, srcCost, dstCost, wire, cont)
}

// Run executes the workload to completion and reports the result.
func (h *HydraSim) Run(label string) Result {
	for _, cl := range h.clients {
		cl := cl
		// Stagger starts by a few ns for deterministic yet interleaved
		// arrival order.
		h.eng.After(int64(cl.id), func() { h.step(cl) })
	}
	// Reclamation pump: the amortized lease-expiry reclamation the live
	// shard loop performs, as a periodic virtual-time task per shard. It
	// stops rescheduling once the workload drains so the engine terminates.
	var pump func(sh *simShard)
	pump = func(sh *simShard) {
		sh.store.ReclaimDue()
		if h.completed < int64(len(h.cfg.Workload.Requests)) {
			h.eng.After(10e6, func() { pump(sh) })
		}
	}
	for _, sh := range h.shards {
		sh := sh
		h.eng.After(10e6, func() { pump(sh) })
	}
	h.eng.Run()
	r := finalize(label, h.completed, h.endNs, h.getHist, h.updHist)
	r.Hits, r.Stale, r.Misses = h.hits, h.stale, h.misses
	r.Replicated = h.replicated
	r.PutErrors = h.putErrors
	r.MaxPendingReclaims = h.maxPending
	for _, sh := range h.shards {
		u := sh.cpu.UtilizationAt(h.endNs)
		if sh.lock != nil {
			if lu := sh.lock.UtilizationAt(h.endNs); lu > u {
				u = lu
			}
		}
		if u > r.MaxShardUtil {
			r.MaxShardUtil = u
		}
	}
	var nicU float64
	for _, mi := range h.cfg.ServerMachines {
		if u := h.machines[mi].nic.UtilizationAt(h.endNs); u > nicU {
			nicU = u
		}
	}
	r.NICUtil = nicU
	return r
}

// step issues the client's next operation.
func (h *HydraSim) step(cl *simClient) {
	if h.nextOp >= len(h.cfg.Workload.Requests) {
		return
	}
	req := h.cfg.Workload.Requests[h.nextOp]
	h.nextOp++
	key := string(h.cfg.Workload.KeyInto(cl.keyBuf[:], req.KeyIdx))
	start := h.eng.Now()
	switch req.Op {
	case ycsb.OpRead:
		h.doGet(cl, key, start)
	default: // update & insert are server-handled writes
		h.msgOp(cl, key, message.OpPut, start)
	}
}

func (h *HydraSim) complete(cl *simClient, start int64, hist *stats.Histogram) {
	hist.Record(h.eng.Now() - start)
	h.completed++
	h.endNs = h.eng.Now()
	h.eng.After(h.cfg.Cost.ClientThinkNs, func() { h.step(cl) })
}

const (
	reqHeaderBytes  = 16
	respHeaderBytes = 38
)

// doGet first tries the one-sided path (§4.2.2), falling back to messaging.
func (h *HydraSim) doGet(cl *simClient, key string, start int64) {
	if h.cfg.Mode == ModeWriteRead {
		if e, ok := cl.cache[key]; ok {
			if lease.ValidForRead(e.leaseExp, h.eng.Now(), 1e6) {
				h.rdmaRead(cl, key, e, start)
				return
			}
			h.stale++
			delete(cl.cache, key)
			h.msgOp(cl, key, message.OpGet, start)
			return
		}
		h.misses++
	} else {
		h.misses++
	}
	h.msgOp(cl, key, message.OpGet, start)
}

// rdmaRead is the one-sided GET: one round trip, zero shard CPU.
func (h *HydraSim) rdmaRead(cl *simClient, key string, e *ptrEntry, start int64) {
	sh, ok := h.shards[e.ptr.ShardID]
	if !ok {
		h.stale++
		delete(cl.cache, key)
		h.msgOp(cl, key, message.OpGet, start)
		return
	}
	bytes := int(e.ptr.DataLen) + 16
	h.hop(cl.m, sh.m, bytes, func() {
		h.hop(sh.m, cl.m, bytes, func() {
			// Validate against the real store state at fetch time.
			buf := make([]byte, e.ptr.DataLen)
			_, guardian, leaseExp, err := sh.store.ReadAt(e.ptr, buf)
			valid := err == nil && guardian == kv.GuardianLive
			if valid {
				k, _, okDec := kv.DecodeItem(buf)
				valid = okDec && string(k) == key
			}
			if !valid {
				// Invalid hit: outdated item observed; re-fetch through the
				// server (§4.2.3). The extra round trip stays in this op's
				// latency, as in the paper.
				h.stale++
				delete(cl.cache, key)
				h.msgOp(cl, key, message.OpGet, start)
				return
			}
			h.hits++
			if leaseExp > e.leaseExp {
				e.leaseExp = leaseExp
			}
			h.complete(cl, start, h.getHist)
		})
	})
}

// msgOp is the RDMA-Write (or Send/Recv) message path through the shard.
func (h *HydraSim) msgOp(cl *simClient, key string, op message.Op, start int64) {
	sh := h.shards[h.ring.OwnerOfKey([]byte(key))]
	c := &h.cfg.Cost
	reqBytes := reqHeaderBytes + len(key)
	if op == message.OpPut {
		reqBytes += h.cfg.Workload.Spec.ValueLen
	}
	h.hop(cl.m, sh.m, reqBytes, func() {
		h.serve(sh, op, func() (respVal int, after func(), gate func(func())) {
			// Executed when the shard thread picks the request up.
			return h.applyOp(cl, sh, key, op)
		}, func(respVal int, after func()) {
			respBytes := respHeaderBytes + respVal
			h.hop(sh.m, cl.m, respBytes, func() {
				if after != nil {
					after()
				}
				extra := int64(0)
				if h.cfg.Mode == ModeSendRecv {
					extra = c.SendRecvClientNs
				}
				if extra > 0 {
					h.eng.After(extra, func() { h.finishOp(cl, op, start) })
				} else {
					h.finishOp(cl, op, start)
				}
			})
		})
	})
}

func (h *HydraSim) finishOp(cl *simClient, op message.Op, start int64) {
	if op == message.OpGet {
		h.complete(cl, start, h.getHist)
	} else {
		h.complete(cl, start, h.updHist)
	}
}

// serve routes a request through the shard's execution model, then calls
// respond with the result of work(). work may return a gate that defers the
// response (strict replication waits for acks, §5.2).
func (h *HydraSim) serve(sh *simShard, op message.Op, work func() (int, func(), func(func())), respond func(int, func())) {
	c := &h.cfg.Cost
	proc := c.ShardFixedNs
	if h.cfg.NUMAInterleaved {
		// Memory not confined to the shard thread's NUMA domain: every
		// request pays remote-node access latency (§4.1.2).
		proc += c.NUMAPenaltyNs
	}
	if op == message.OpGet {
		proc += c.ShardGetNs
	} else {
		proc += c.ShardPutNs + int64(len(sh.secMachines))*c.ReplPostNs
		if h.cfg.Strict && len(sh.secMachines) > 0 {
			// Strict request/ack occupies the single shard thread for the
			// whole ack round trip — the serialization that makes it
			// "consistently double the average latency" (Fig. 13). The
			// secondaries are contacted in parallel, so one round trip's
			// worth of hold time is charged.
			proc += 2*c.WireNs + 2*c.NICOpNs + c.SecApplyNs
		}
	}
	finish := func() {
		v, after, gate := work()
		if gate != nil {
			gate(func() { respond(v, after) })
		} else {
			respond(v, after)
		}
	}
	switch h.cfg.Mode {
	case ModeSendRecv:
		sh.cpu.Acquire(proc+c.SendRecvServerNs, finish)
	case ModeTCP:
		// Kernel receive/send CPU per message on the shard's core.
		sh.cpu.Acquire(proc+c.KernelNs, finish)
	case ModePipelineWrite:
		// Fig. 5(a): I/O threads detect + enqueue, workers process under a
		// shared-store mutex, then hand the response back.
		sh.dispatch.Acquire(c.PipeDispatchNs, func() {
			h.eng.After(c.PipeHandoffNs, func() {
				sh.workers.Acquire(c.PipeWorkerNs, func() {
					sh.lock.Acquire(proc+c.PipeLockNs, finish)
				})
			})
		})
	default:
		if sh.inst != nil {
			// Sub-sharding: the instance's connection thread detects the
			// request and hands it to the owning sub-shard core (§6.3).
			sh.inst.Acquire(c.SubShardDemuxNs, func() {
				sh.cpu.Acquire(proc, finish)
			})
			return
		}
		sh.cpu.Acquire(proc, finish)
	}
}

// applyOp executes the real store operation and replication side effects.
// It returns the response payload size, a client-side continuation that
// installs the returned remote pointer, and (for strict replication) a gate
// deferring the response until the secondaries ack.
func (h *HydraSim) applyOp(cl *simClient, sh *simShard, key string, op message.Op) (int, func(), func(func())) {
	switch op {
	case message.OpGet:
		res, ok := sh.store.Get([]byte(key))
		if !ok {
			return 0, nil, nil
		}
		valLen := len(res.Value)
		after := h.cacheInstaller(cl, sh, key, res)
		return valLen, after, nil

	default: // Put
		res, _, err := sh.store.Put([]byte(key), h.cfg.Workload.Value())
		if err != nil {
			h.putErrors++
			return 0, nil, nil
		}
		if p := sh.store.PendingReclaims(); p > h.maxPending {
			h.maxPending = p
		}
		// Both modes post the records here; in strict mode the ack round
		// trip is charged as shard hold time inside serve() — the single
		// shard thread blocks on every acknowledgement (§5.2), which is
		// exactly what Fig. 13's doubling comes from.
		h.replicate(sh)
		after := h.cacheInstaller(cl, sh, key, res)
		return 0, after, nil
	}
}

// cacheInstaller builds the client-side continuation caching the remote
// pointer returned with a response (§4.2.2).
func (h *HydraSim) cacheInstaller(cl *simClient, sh *simShard, key string, res kv.GetResult) func() {
	if h.cfg.Mode != ModeWriteRead {
		return nil
	}
	ptr := res.Ptr
	ptr.ShardID = sh.id
	leaseExp := res.LeaseExp
	return func() { cl.cache[key] = &ptrEntry{ptr: ptr, leaseExp: leaseExp} }
}

// replicate posts one log record to each secondary. In logging mode the
// posts are fire-and-forget one-sided writes that merely queue ahead of the
// response on the primary NIC (§5.2); in strict mode the response path is
// gated on every secondary's ack round trip.
func (h *HydraSim) replicate(sh *simShard) {
	if len(sh.secMachines) == 0 {
		return
	}
	recBytes := 8 + h.cfg.Workload.Spec.KeyLen + h.cfg.Workload.Spec.ValueLen
	h.replicated += int64(len(sh.secMachines))
	for i, sm := range sh.secMachines {
		i, sm := i, sm
		h.hop(sh.m, sm, recBytes, func() {
			sh.secApply[i].Acquire(h.cfg.Cost.SecApplyNs, func() {})
		})
	}
}
