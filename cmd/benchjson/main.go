// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so CI can archive benchmark runs as
// artifacts and check a snapshot into the repo (BENCH_PR7.json) without
// anyone hand-editing numbers out of a log.
//
//	go test -run='^$' -bench=BenchmarkLive -benchtime=2000x . | benchjson > BENCH.json
//
// Non-benchmark lines (PASS, ok, test logs) are ignored; header lines
// (goos/goarch/cpu/pkg) are captured as environment metadata. ops_per_sec
// is derived from ns/op; B/op and allocs/op appear when the benchmark
// reported them (-benchmem or b.ReportAllocs).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, flattened.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	OpsPerSec   float64            `json:"ops_per_sec"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

// Report is the whole document.
type Report struct {
	Env        map[string]string  `json:"env,omitempty"`
	Benchmarks map[string]*Result `json:"benchmarks"`
}

func main() {
	rep := Report{Env: map[string]string{}, Benchmarks: map[string]*Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
			if rest, ok := strings.CutPrefix(line, k+":"); ok {
				rep.Env[k] = strings.TrimSpace(rest)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		name := f[0]
		if maxprocsSuffix(name) > 0 {
			name = name[:strings.LastIndexByte(name, '-')]
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue // a RUN header or benchmark log line, not a result
		}
		r := &Result{Iterations: iters}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
				if v > 0 {
					r.OpsPerSec = 1e9 / v
				}
			case "B/op":
				n := int64(v)
				r.BytesPerOp = &n
			case "allocs/op":
				n := int64(v)
				r.AllocsPerOp = &n
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		rep.Benchmarks[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// maxprocsSuffix extracts the trailing -N GOMAXPROCS marker of a benchmark
// name, or 0 when the name has none (GOMAXPROCS=1 runs print bare names).
func maxprocsSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return 0
	}
	return n
}
