package rdma

import (
	"bytes"
	"testing"

	"hydradb/internal/arena"
	"hydradb/internal/testutil"
)

// hookFor installs a hook that applies out to every op of the given verb.
func hookFor(f *Fabric, verb Verb, out FaultOutcome) {
	f.SetFaultHook(func(v Verb, local, remote *NIC, nbytes int) FaultOutcome {
		if v == verb {
			return out
		}
		return FaultOutcome{}
	})
}

func testPair(t *testing.T) (*Fabric, *QP, *QP, *MemoryRegion) {
	t.Helper()
	f := NewFabric(Config{})
	a := f.NewNIC("a")
	b := f.NewNIC("b")
	qa, qb := Connect(a, b, 8)
	mr := b.Register(make([]byte, 64), arena.NewWordArea(4, 1))
	return f, qa, qb, mr
}

func TestFaultErrFailsOp(t *testing.T) {
	f, qa, _, mr := testPair(t)
	hookFor(f, VerbWrite, FaultOutcome{Err: ErrInjected})
	if err := qa.WriteBytes(mr, 0, []byte("x")); err != ErrInjected {
		t.Fatalf("WriteBytes err = %v, want ErrInjected", err)
	}
	if err := qa.WriteWord(mr, 0, 7); err != ErrInjected {
		t.Fatalf("WriteWord err = %v, want ErrInjected", err)
	}
	if err := qa.WriteIndicated(mr, 0, []byte("x"), 0, 1, 9); err != ErrInjected {
		t.Fatalf("WriteIndicated err = %v, want ErrInjected", err)
	}
	// The payload must not have landed.
	if mr.Data()[0] != 0 || mr.Words().Load(0) != 0 {
		t.Fatal("failed op had side effects")
	}
	f.SetFaultHook(nil)
	testutil.Must(qa.WriteBytes(mr, 0, []byte("x")))
	if mr.Data()[0] != 'x' {
		t.Fatal("op after hook removal did not land")
	}
}

func TestFaultDropSilentlySkipsWrite(t *testing.T) {
	f, qa, _, mr := testPair(t)
	hookFor(f, VerbWrite, FaultOutcome{Drop: true})
	if err := qa.WriteIndicated(mr, 0, []byte("pay"), 0, 1, 42); err != nil {
		t.Fatalf("dropped write errored: %v", err)
	}
	if mr.Words().Load(0) != 0 || mr.Words().Load(1) != 0 {
		t.Fatal("dropped write published its indicator")
	}
	if !bytes.Equal(mr.Data()[:3], []byte{0, 0, 0}) {
		t.Fatal("dropped write landed payload")
	}
}

func TestFaultDropOnReadSurfacesAsError(t *testing.T) {
	f, qa, _, mr := testPair(t)
	copy(mr.Data(), "hello")
	hookFor(f, VerbRead, FaultOutcome{Drop: true})
	dst := make([]byte, 5)
	if _, _, err := qa.Read(mr, 0, dst); err != ErrInjected {
		t.Fatalf("dropped read err = %v, want ErrInjected", err)
	}
	f.SetFaultHook(nil)
	n := testutil.Must1(qa.ReadInto(mr, 0, dst, nil))
	if n != 5 || string(dst) != "hello" {
		t.Fatalf("read after heal: %q", dst)
	}
}

func TestFaultDropLosesSend(t *testing.T) {
	f, qa, qb, _ := testPair(t)
	hookFor(f, VerbSend, FaultOutcome{Drop: true})
	testutil.Must(qa.Send([]byte("lost")))
	if m, ok := qb.TryRecv(); ok {
		t.Fatalf("dropped send delivered %q", m)
	}
	f.SetFaultHook(nil)
	testutil.Must(qa.Send([]byte("kept")))
	m, ok := qb.TryRecv()
	if !ok || string(m) != "kept" {
		t.Fatalf("send after heal: %q %v", m, ok)
	}
}

func TestFaultDuplicateSend(t *testing.T) {
	f, qa, qb, _ := testPair(t)
	hookFor(f, VerbSend, FaultOutcome{Duplicate: true})
	testutil.Must(qa.Send([]byte("twice")))
	for i := 0; i < 2; i++ {
		m, ok := qb.TryRecv()
		if !ok || string(m) != "twice" {
			t.Fatalf("copy %d: %q %v", i, m, ok)
		}
	}
	if _, ok := qb.TryRecv(); ok {
		t.Fatal("more than two copies delivered")
	}
}

func TestFaultReorderSwapsSends(t *testing.T) {
	f, qa, qb, _ := testPair(t)
	first := true
	f.SetFaultHook(func(v Verb, local, remote *NIC, nbytes int) FaultOutcome {
		if v == VerbSend && first {
			first = false
			return FaultOutcome{Reorder: true}
		}
		return FaultOutcome{}
	})
	testutil.Must(qa.Send([]byte("one")))
	if _, ok := qb.TryRecv(); ok {
		t.Fatal("held message delivered early")
	}
	testutil.Must(qa.Send([]byte("two")))
	m1, _ := qb.TryRecv()
	m2, _ := qb.TryRecv()
	if string(m1) != "two" || string(m2) != "one" {
		t.Fatalf("order = %q, %q; want two, one", m1, m2)
	}
}

func TestFaultDelayExecutesOp(t *testing.T) {
	f, qa, _, mr := testPair(t)
	hookFor(f, VerbWrite, FaultOutcome{DelayNs: 100_000}) // 100µs spin
	testutil.Must(qa.WriteBytes(mr, 0, []byte("d")))
	if mr.Data()[0] != 'd' {
		t.Fatal("delayed write did not land")
	}
}

func TestFaultHookSeesNICs(t *testing.T) {
	f, qa, _, mr := testPair(t)
	var gotLocal, gotRemote string
	f.SetFaultHook(func(v Verb, local, remote *NIC, nbytes int) FaultOutcome {
		gotLocal, gotRemote = local.Name(), remote.Name()
		return FaultOutcome{}
	})
	testutil.Must(qa.WriteBytes(mr, 0, []byte("x")))
	if gotLocal != "a" || gotRemote != "b" {
		t.Fatalf("hook saw %s->%s, want a->b", gotLocal, gotRemote)
	}
}
