package hashtable

import (
	"testing"

	"hydradb/internal/hashx"
)

// FuzzBucketEncodeDecode fuzzes the bucket word codec — the 16-bit
// signature / 48-bit reference slot packing and the filter/link split of the
// header word — and then drives a whole table through an op sequence
// derived from the input, holding CheckInvariants as the oracle. The codec
// is what a one-sided RDMA Read of a bucket decodes on the client side
// (§4.1.2), so "every bit pattern decodes to what was encoded" is a wire
// compatibility property, not just an implementation detail.
func FuzzBucketEncodeDecode(f *testing.F) {
	f.Add(uint16(1), uint64(42), uint64(0x7f), uint64(3), []byte("put-get-del"))
	f.Add(uint16(0xffff), refMask, ^uint64(0), uint64(0), []byte{})
	f.Add(uint16(0), uint64(0), uint64(0), uint64(1)<<55, []byte{0xff, 0x00, 0x7a})

	f.Fuzz(func(t *testing.T, sig uint16, ref, hdr, link uint64, ops []byte) {
		// Slot word: signature and reference survive packing independently.
		w := makeSlot(sig, ref)
		if got := slotSig(w); got != sig {
			t.Fatalf("slotSig(makeSlot(%#x, %#x)) = %#x", sig, ref, got)
		}
		if got := slotRef(w); got != ref&refMask {
			t.Fatalf("slotRef(makeSlot(%#x, %#x)) = %#x, want %#x", sig, ref, got, ref&refMask)
		}

		// Header word: setting the overflow link must preserve the Bloom
		// filter bits and round-trip the link (56 usable bits).
		link &= (uint64(1) << 56) - 1
		h2 := setHeaderLink(hdr, link)
		if got := headerLink(h2); got != link {
			t.Fatalf("headerLink(setHeaderLink(%#x, %#x)) = %#x", hdr, link, got)
		}
		if h2&filterMask != hdr&filterMask {
			t.Fatalf("setHeaderLink clobbered filter bits: %#x -> %#x", hdr&filterMask, h2&filterMask)
		}

		// Table-level: replay ops against a tiny table (2 main buckets so
		// overflow chains, compaction, and filter rebuilds all trigger) and
		// a shadow map; every state must pass the structural invariants.
		tbl := New(2)
		shadow := map[uint64]uint64{} // hash -> ref
		matchRef := func(want uint64) MatchFunc {
			return func(r uint64) bool { return r == want }
		}
		for i, b := range ops {
			h := hashx.Hash64(uint64(b % 16)) // few distinct keys: force collisions
			ref := uint64(i + 1)
			switch b % 3 {
			case 0:
				old, replaced, err := tbl.Insert(h, ref, matchRef(shadow[h]))
				if err != nil {
					t.Fatalf("op %d: Insert: %v", i, err)
				}
				if prev, ok := shadow[h]; ok != replaced || (ok && old != prev) {
					t.Fatalf("op %d: Insert replaced=%v old=%d, shadow %v %d", i, replaced, old, ok, prev)
				}
				shadow[h] = ref
			case 1:
				got, ok := tbl.Lookup(h, matchRef(shadow[h]))
				want, wok := shadow[h]
				if ok != wok || (ok && got != want) {
					t.Fatalf("op %d: Lookup = %d,%v want %d,%v", i, got, ok, want, wok)
				}
			case 2:
				got, ok := tbl.Delete(h, matchRef(shadow[h]))
				want, wok := shadow[h]
				if ok != wok || (ok && got != want) {
					t.Fatalf("op %d: Delete = %d,%v want %d,%v", i, got, ok, want, wok)
				}
				delete(shadow, h)
			}
			if err := tbl.CheckInvariants(); err != nil {
				t.Fatalf("op %d (%d): invariants: %v", i, b, err)
			}
			if tbl.Len() != len(shadow) {
				t.Fatalf("op %d: Len = %d, shadow %d", i, tbl.Len(), len(shadow))
			}
		}
	})
}
