package replication

import "hydradb/internal/protocolspec"

// ReadySpec declares the replication log's commit protocol: the
// secondary's applied watermark may only advance after the replicated
// record has actually been applied (promotion trusts the watermark),
// the started flag is the daemon's ready indicator, and PollOnce
// size-guards the slot's ready word against torn reads. Feeds the
// "replication" model footprint.
var ReadySpec = protocolspec.Spec{
	Name:     "replication-ready",
	Model:    "replication",
	Packages: []string{"hydradb/internal/replication"},
	Words: []protocolspec.Word{
		{
			Name:      "hydradb/internal/replication.Secondary.applied",
			Role:      protocolspec.CommitWord,
			Footprint: true,
			Why:       "the watermark a failover promotion trusts; covered by the apply-after-replicate edge rather than a writer list so any new writer must also prove the ordering",
		},
		{
			Name:      "hydradb/internal/replication.Secondary.started",
			Role:      protocolspec.ReadyWord,
			Footprint: true,
			Writers:   []string{"(*hydradb/internal/replication.Secondary).Run"},
			Why:       "flipped once by the poll daemon after its first scheduling round",
		},
	},
	Edges: []protocolspec.Edge{{
		Kind: protocolspec.ApplyAfterReplicate,
		From: "Apply",
		To:   "hydradb/internal/replication.Secondary.applied",
		Why:  "an applied sequence the store never saw would ack data loss; the applier call must precede the watermark store",
	}},
	Guards: []protocolspec.Guard{{
		Reader: "(*hydradb/internal/replication.Secondary).PollOnce",
		Bound:  "SlotSize",
		Why:    "the size half of a torn ready word must not slice past the record slot",
	}},
}
