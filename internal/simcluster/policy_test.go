package simcluster

import (
	"math"
	"testing"
)

// TestTokenBucket pins the refill/cap/admit arithmetic in virtual time.
func TestTokenBucket(t *testing.T) {
	tb := &TokenBucket{RatePerSec: 1000, Burst: 100}
	if got := tb.Admit(0, 250); got != 100 {
		t.Errorf("first admit %.1f, want burst 100", got)
	}
	// 50 ms at 1000/s refills 50 tokens.
	if got := tb.Admit(50_000_000, 10); got != 10 {
		t.Errorf("admit under balance = %.1f, want 10", got)
	}
	if got := tb.Admit(50_000_000, 1000); got != 40 {
		t.Errorf("drained admit %.1f, want remaining 40", got)
	}
	// A long idle period caps at Burst, never beyond.
	if got := tb.Admit(10_000_000_000, 1000); got != 100 {
		t.Errorf("post-idle admit %.1f, want burst cap 100", got)
	}
	if tb.Name() != "token-bucket" {
		t.Errorf("name %q", tb.Name())
	}
	if got := (AlwaysAdmit{}).Admit(0, 123.5); got != 123.5 {
		t.Errorf("AlwaysAdmit %.1f", got)
	}
}

// TestBounceRefresh pins the at-least-one-bounce probability shape.
func TestBounceRefresh(t *testing.T) {
	var b BounceRefresh
	if got := b.Refreshed(1000, 10, 0, 1); got != 0 {
		t.Errorf("no movement must refresh nobody, got %.1f", got)
	}
	want := 1000 * (1 - math.Pow(0.95, 10))
	if got := b.Refreshed(1000, 10, 0.05, 1); math.Abs(got-want) > 1e-9 {
		t.Errorf("refresh %.3f, want %.3f", got, want)
	}
	// More ops per tick converge faster.
	if b.Refreshed(1000, 20, 0.05, 1) <= b.Refreshed(1000, 5, 0.05, 1) {
		t.Error("refresh rate must grow with ops per client")
	}
}

// TestPeriodicRefresh pins the interval fraction and its clamp.
func TestPeriodicRefresh(t *testing.T) {
	p := PeriodicRefresh{IntervalNs: 100}
	if got := p.Refreshed(1000, 0, 0, 10); got != 100 {
		t.Errorf("tick/interval share %.1f, want 100", got)
	}
	if got := p.Refreshed(1000, 0, 0, 1000); got != 1000 {
		t.Errorf("overlong tick %.1f, want full 1000", got)
	}
	if got := (PeriodicRefresh{}).Refreshed(42, 0, 0, 1); got != 42 {
		t.Errorf("zero interval %.1f, want immediate 42", got)
	}
}
