// Benchmark harness entry points: one testing.B benchmark per paper table/
// figure (regenerating it at a reduced scale and reporting the headline
// metric), plus live-mode microbenchmarks of the operation paths that
// ground the simulator's cost model (see internal/simcluster/cost.go and
// EXPERIMENTS.md). For full tables use: go run ./cmd/hydra-bench -fig all.
package hydradb_test

import (
	"fmt"
	"sync"
	"testing"

	"hydradb"
	"hydradb/internal/bench"
	"hydradb/internal/simcluster"
	"hydradb/internal/ycsb"
)

// benchScale keeps figure regeneration fast enough for -bench runs.
var benchScale = bench.Scale{Name: "bench", Records: 5000, Ops: 20000, Clients: 20}

func BenchmarkFig02_MapReduceCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := bench.Fig02(benchScale)
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig03_G2Engines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := bench.Fig03(benchScale)
		if len(tbl.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig09_StoreComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := bench.Fig09(benchScale)
		if len(tbl.Rows) != 24 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig10_DesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := bench.Fig10(benchScale)
		if len(tbl.Rows) != 24 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig11_PointerHits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := bench.Fig11(benchScale)
		if len(tbl.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig12_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tbl := bench.Fig12ScaleOut(benchScale, ycsb.Uniform); len(tbl.Rows) != 7 {
			b.Fatal("bad scale-out table")
		}
		if tbl := bench.Fig12ScaleUp(benchScale, ycsb.Zipfian); len(tbl.Rows) != 8 {
			b.Fatal("bad scale-up table")
		}
	}
}

func BenchmarkFig13_Replication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := bench.Fig13(benchScale)
		if len(tbl.Rows) != 25 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkSimThroughput reports the virtual-testbed simulation rate — how
// many simulated KV operations the DES executes per wall second.
func BenchmarkSimThroughput(b *testing.B) {
	w, err := ycsb.Generate(ycsb.StandardSpec(5000, 20000, 90, ycsb.Zipfian, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		h, err := simcluster.NewHydraSim(simcluster.HydraConfig{
			Workload: w, Clients: 20, ServerMachines: []int{0},
			ClientMachines: []int{2, 3, 4, 5, 6, 7},
			Mode:           simcluster.ModeWriteRead, SharedCache: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		r := h.Run("bench")
		ops += int(r.Ops)
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "simulated-ops/s")
}

// --- live-mode microbenchmarks: the real middleware path costs ---

func liveDB(b *testing.B) (*hydradb.DB, *hydradb.Client) {
	b.Helper()
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.ArenaBytesPerShard = 64 << 20
	opts.MaxItemsPerShard = 1 << 18
	db, err := hydradb.Start(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	return db, db.NewClient()
}

func BenchmarkLivePut(b *testing.B) {
	// Every update detaches an out-of-place area that stays leased (~1 s of
	// real time), so the store must hold b.N pending areas: size it to the
	// iteration count. This is the real memory price of §4.2.3's deferred
	// reclamation under a sustained update stream.
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.MaxItemsPerShard = b.N + 1<<17
	opts.ArenaBytesPerShard = (b.N + 1<<17) * 128
	db, err := hydradb.Start(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	c := db.NewClient()
	key := make([]byte, 16)
	val := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(key, fmt.Sprintf("user%012d", i&0xFFFF))
		if err := c.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiveGet_RDMARead(b *testing.B) {
	_, c := liveDB(b)
	if err := c.Put([]byte("benchkey08bytes!"), make([]byte, 32)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get([]byte("benchkey08bytes!")); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// One-sided reads are invisible to the server, so the lease expires
	// every ~1 s of real time and one message GET re-arms it (§4.2.3) —
	// demand ≥99% of reads stayed one-sided rather than all of them.
	if hits := c.Counters().Snapshot().RDMAReadHits; hits < int64(b.N)*99/100 {
		b.Fatalf("only %d of %d reads stayed one-sided", hits, b.N)
	}
}

func BenchmarkLiveGet_MessagePath(b *testing.B) {
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.DisableRDMARead = true // "RDMA Write Only" mode
	opts.ArenaBytesPerShard = 16 << 20
	opts.MaxItemsPerShard = 1 << 16
	db, err := hydradb.Start(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	c := db.NewClient()
	if err := c.Put([]byte("benchkey08bytes!"), make([]byte, 32)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get([]byte("benchkey08bytes!")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiveGet_SendRecv(b *testing.B) {
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.SendRecv = true
	opts.DisableRDMARead = true
	opts.ArenaBytesPerShard = 16 << 20
	opts.MaxItemsPerShard = 1 << 16
	db, err := hydradb.Start(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	c := db.NewClient()
	if err := c.Put([]byte("benchkey08bytes!"), make([]byte, 32)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get([]byte("benchkey08bytes!")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLivePipelinedGet drives the same message-only configuration as
// BenchmarkLiveGet_MessagePath through MultiGet with a full pipeline window,
// so ns/op compares a pipelined GET directly against a sequential one. The
// acceptance bar for the slot-ring work is ≥2× the sequential ops/s.
func BenchmarkLivePipelinedGet(b *testing.B) {
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.DisableRDMARead = true // "RDMA Write Only" mode
	opts.ArenaBytesPerShard = 16 << 20
	opts.MaxItemsPerShard = 1 << 16
	opts.PipelineWindow = 16
	db, err := hydradb.Start(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	c := db.NewClient()
	const batch = 16
	keys := make([][]byte, batch)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("benchkey%02dbytes!", i))
		if err := c.Put(keys[i], make([]byte, 32)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		vals, err := c.MultiGet(keys)
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) != batch || vals[0] == nil {
			b.Fatal("bad batch result")
		}
	}
}

// BenchmarkLiveMultiPut measures batched updates through the pipeline.
func BenchmarkLiveMultiPut(b *testing.B) {
	opts := hydradb.DefaultOptions()
	opts.ShardsPerMachine = 1
	opts.DisableRDMARead = true
	opts.MaxItemsPerShard = b.N + 1<<17
	opts.ArenaBytesPerShard = (b.N + 1<<17) * 128
	db, err := hydradb.Start(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	c := db.NewClient()
	const batch = 16
	pairs := make([]hydradb.KV, batch)
	for i := range pairs {
		pairs[i] = hydradb.KV{
			Key: []byte(fmt.Sprintf("putkey%02dbytes!!", i)),
			Val: make([]byte, 32),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		if err := c.MultiPut(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveGet_ReadPlane drives the message-only GET configuration of
// BenchmarkLiveGet_MessagePath with four concurrent clients (one connection
// each) against a single shard, sweeping the read plane from off to four
// reader goroutines (DESIGN.md §13). readers=0 is the exclusive shard loop
// serving all four connections; with readers on, each connection's GETs are
// served by a dedicated reader through guardian-validated probes. The
// acceptance bar for the read-plane work is ≥1.5× the readers=0 ops/s at
// four readers.
func BenchmarkLiveGet_ReadPlane(b *testing.B) {
	const clients = 4
	for _, readers := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			opts := hydradb.DefaultOptions()
			opts.ShardsPerMachine = 1
			opts.DisableRDMARead = true // "RDMA Write Only" mode
			opts.ArenaBytesPerShard = 16 << 20
			opts.MaxItemsPerShard = 1 << 16
			opts.ReaderThreads = readers
			db, err := hydradb.Start(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(db.Close)
			// One client per goroutine (clients are not concurrent-safe);
			// each owns a connection, so conn↔reader partitioning spreads
			// the four clients across the readers.
			cs := make([]*hydradb.Client, clients)
			key := []byte("benchkey08bytes!")
			for i := range cs {
				cs[i] = db.NewClient()
				if i == 0 {
					if err := cs[i].Put(key, make([]byte, 32)); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := cs[i].Get(key); err != nil { // open the conn
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := range cs {
				n := b.N / clients
				if i == 0 {
					n += b.N % clients
				}
				wg.Add(1)
				go func(c *hydradb.Client, n int) {
					defer wg.Done()
					var buf []byte
					for j := 0; j < n; j++ {
						var err error
						buf, err = c.GetInto(key, buf[:0])
						if err != nil || len(buf) != 32 {
							b.Errorf("get: len=%d err=%v", len(buf), err)
							return
						}
					}
				}(cs[i], n)
			}
			wg.Wait()
			b.StopTimer()
			if readers > 0 {
				if hits := db.Stats().ReadPlaneHits; hits < int64(b.N)/2 {
					b.Fatalf("only %d of %d GETs served by the read plane", hits, b.N)
				}
			}
		})
	}
}
