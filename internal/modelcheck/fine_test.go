//go:build hydradebug

package modelcheck

import "testing"

// TestFineModeSmoke runs a tightly bounded word-granularity exploration of
// the mailbox model: every arena.WordArea access by a model thread becomes a
// scheduling decision via the invariant.SchedPoint hook. The space is far too
// large to exhaust, so this is a smoke test — the correct protocol must
// survive whatever prefix fits the bound, and the word-level hook must not
// wedge the scheduler.
func TestFineModeSmoke(t *testing.T) {
	if !FineAvailable {
		t.Skip("fine mode needs -tags hydradebug")
	}
	res := Explore(mailboxModel, false, Options{Fine: true, MaxSteps: 400, MaxSchedules: 1500})
	if res.Violation != nil {
		t.Fatalf("fine-grained mailbox exploration violated:\n%s", res.Violation)
	}
	if res.Schedules == 0 {
		t.Fatal("no schedules explored")
	}
	t.Logf("fine mailbox: %d schedules, %d steps, truncated=%v", res.Schedules, res.Steps, res.Truncated)
}

// TestFineModeSeededBug checks the fine-grained scheduler still catches the
// mailbox window bug (coarse steps are a subset of fine interleavings, so the
// credit violation must surface within a small bound too).
func TestFineModeSeededBug(t *testing.T) {
	res := Explore(mailboxModel, true, Options{Fine: true, MaxSteps: 400, MaxSchedules: 1500})
	if res.Violation == nil {
		t.Fatalf("seeded mailbox bug undetected in fine mode after %d schedules", res.Schedules)
	}
}
