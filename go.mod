module hydradb

go 1.22
