package cluster

import (
	"fmt"
	"strings"
	"testing"

	"hydradb/internal/testutil"
	"time"

	"hydradb/internal/client"
	"hydradb/internal/kv"
	"hydradb/internal/timing"
)

func testConfig(clk timing.Clock) Config {
	return Config{
		ServerMachines:   2,
		ClientMachines:   2,
		ShardsPerMachine: 2,
		Store: kv.Config{
			ArenaBytes: 2 << 20,
			MaxItems:   8192,
			Clock:      clk,
		},
	}
}

func TestClusterBasicOps(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cl, err := New(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	if len(cl.ShardIDs()) != 4 {
		t.Fatalf("shards = %d", len(cl.ShardIDs()))
	}
	c := cl.NewClient(0, client.Options{UseRDMARead: true})
	const n = 200
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%016d", i))
		if err := c.Put(k, []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%016d", i))
		v, err := c.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("get %s: %q %v", k, v, err)
		}
	}
	// Keys must actually spread across shards.
	populated := 0
	for _, id := range cl.ShardIDs() {
		if cl.Shard(id).Store().Len() > 0 {
			populated++
		}
	}
	if populated < 3 {
		t.Fatalf("only %d shards populated", populated)
	}
}

func TestReplicationToSecondaries(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.Replicas = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	c := cl.NewClient(0, client.Options{})
	const n = 100
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user%016d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the drain loops via the atomic applied counters, then stop
	// the cluster and inspect the (now quiescent) replica stores.
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		return cl.SecondaryAppliedTotal() == int64(n)
	}, "replicas never converged")
	ids := cl.ShardIDs()
	cl.Stop()
	total := 0
	for _, id := range ids {
		for _, st := range cl.SecondaryStores(id) {
			total += st.Len()
		}
	}
	if total != n {
		t.Fatalf("replica stores hold %d items, want %d", total, n)
	}
}

func TestFailoverPreservesAckedWrites(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.Replicas = 1
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	c := cl.NewClient(0, client.Options{UseRDMARead: true})
	const n = 300
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%016d", i))
		if err := c.Put(k, []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the primary holding the most keys.
	var victim uint32
	maxLen := -1
	for _, id := range cl.ShardIDs() {
		if l := cl.Shard(id).Store().Len(); l > maxLen {
			maxLen, victim = l, id
		}
	}
	epochBefore := cl.Epoch()
	if err := cl.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	// SWAT must notice and promote.
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return cl.Promotions.Load() >= 1 && cl.Epoch() > epochBefore
	}, "promotion never happened")

	// Every acknowledged write must still be readable. The client's stale
	// epoch and cached pointers into the dead shard's arena must recover
	// transparently (WrongShard -> refresh; stale pointer -> fallback).
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%016d", i))
		v, err := c.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("after failover, get %s: %q %v", k, v, err)
		}
	}
	// Writes keep working after failover.
	if err := c.Put([]byte("post-failover"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if v := testutil.Must1(c.Get([]byte("post-failover"))); string(v) != "yes" {
		t.Fatal("post-failover write lost")
	}
}

func TestFailoverWithTwoReplicasPicksMostCaughtUp(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.ServerMachines = 3
	cfg.ShardsPerMachine = 1
	cfg.Replicas = 2
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	c := cl.NewClient(0, client.Options{})
	const n = 120
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user%016d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	victim := cl.ShardIDs()[0]
	if err := cl.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool { return cl.Promotions.Load() >= 1 }, "no promotion")

	// The promoted shard must hold every key the dead one owned.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%016d", i))
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get %s after failover: %q %v", k, v, err)
		}
	}
	// And the surviving secondary must be re-attached and re-synced.
	if got := len(cl.SecondaryStores(victim)); got != 1 {
		t.Fatalf("re-attached secondaries = %d, want 1", got)
	}
}

func TestKillUnknownShard(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cl, err := New(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if err := cl.KillShard(999); err == nil {
		t.Fatal("killing unknown shard succeeded")
	}
	if err := cl.Promote(999); err == nil {
		t.Fatal("promoting unknown group succeeded")
	}
}

func TestPromoteWithoutReplicasFails(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cl, err := New(testConfig(clk)) // Replicas: 0
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if err := cl.Promote(cl.ShardIDs()[0]); err == nil {
		t.Fatal("promotion without secondaries succeeded")
	}
}

func TestSendRecvCluster(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.SendRecv = true
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	c := cl.NewClient(0, client.Options{})
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get: %q %v", v, err)
		}
	}
}

func TestPipelinedCluster(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.Pipelined = true
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	c := cl.NewClient(0, client.Options{})
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get: %q %v", v, err)
		}
	}
}

// TestDoublePromotionRace fires two Promote calls for the same group
// concurrently — the SWAT reactor and a chaos controller can both observe
// one failure. Exactly the guarded outcomes are allowed: a success, and
// either a clean "already in progress" error or a second full promotion
// (when the calls did not overlap). Never a panic, and the data stays
// reachable afterwards.
func TestDoublePromotionRace(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.ServerMachines = 3
	cfg.ShardsPerMachine = 1
	cfg.Replicas = 2
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	c := cl.NewClient(0, client.Options{})
	for i := 0; i < 50; i++ {
		if err := c.Put([]byte(fmt.Sprintf("dp%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	victim := cl.ShardIDs()[0]
	if err := cl.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool { return cl.Promotions.Load() >= 1 }, "SWAT promotion")

	// Race two explicit promotions of the already-promoted group.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- cl.Promote(victim) }()
	}
	var failures []error
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			failures = append(failures, err)
		}
	}
	for _, err := range failures {
		if !strings.Contains(err.Error(), "already in progress") &&
			!strings.Contains(err.Error(), "refusing promotion") {
			t.Fatalf("unexpected promotion error: %v", err)
		}
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		v, err := c.Get([]byte("dp0000"))
		return err == nil && string(v) == "v"
	}, "data unreachable after racing promotions")
}

// TestStopThenPromotePreservesAckedWrites is the graceful-shutdown cousin of
// TestFailoverPreservesAckedWrites, run with the parallel read plane on: a
// primary whose readers are live is Stopped (the owner must drain reader
// fallbacks and join every reader goroutine), then declared dead, then its
// secondary is promoted explicitly. Every acknowledged write must be
// readable from the promoted store — a reader still parked on a connection,
// an undrained fallback, or a replication record dropped during the staged
// shutdown would all surface here as a lost write.
func TestStopThenPromotePreservesAckedWrites(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	cfg := testConfig(clk)
	cfg.Replicas = 1
	cfg.ReaderThreads = 2
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	c := cl.NewClient(0, client.Options{UseRDMARead: true})
	const n = 300
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%016d", i))
		if err := c.Put(k, []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
		// Interleave reads so the read plane is hot while writes replicate.
		if i%7 == 0 {
			if _, err := c.Get(k); err != nil {
				t.Fatal(err)
			}
		}
	}

	var victim uint32
	maxLen := -1
	for _, id := range cl.ShardIDs() {
		if l := cl.Shard(id).Store().Len(); l > maxLen {
			maxLen, victim = l, id
		}
	}

	// Graceful stop first: read-plane shutdown (reader join + fallback
	// drain) runs to completion while the process is still healthy. Then
	// declare the primary dead (KillShard also closes its coordination
	// session, without which the promoted primary cannot register) and
	// promote explicitly — the planned-maintenance path. The SWAT reactor
	// sees the session close too, so losing the promotion race to it is
	// fine; either way the partition must end with a promoted primary.
	cl.Shard(victim).Stop()
	if err := cl.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	if err := cl.Promote(victim); err != nil {
		t.Logf("manual promote lost the race to SWAT: %v", err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return cl.Promotions.Load() >= 1
	}, "promotion never happened")

	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%016d", i))
		v, err := c.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val%d", i) {
			t.Fatalf("after stop+promote, get %s: %q %v", k, v, err)
		}
	}
	if err := c.Put([]byte("post-promote"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if v := testutil.Must1(c.Get([]byte("post-promote"))); string(v) != "yes" {
		t.Fatal("post-promote write lost")
	}
}
