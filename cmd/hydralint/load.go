package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package under analysis.
type Package struct {
	ImportPath string
	// RelPath is the module-relative import path ("" for the module root,
	// "internal/kv" for hydradb/internal/kv). Path-scoped checks key off it
	// so linter fixtures living in other module roots behave identically.
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Info    *types.Info
	Pkg     *types.Package
	// Prog is the whole-run view, set by newProgram after every package has
	// loaded; the interprocedural passes resolve call summaries through it.
	Prog *Program
}

// isInternal reports whether the package sits under the module's internal/
// tree — the scope of the data-plane checks.
func (p *Package) isInternal() bool {
	return p.RelPath == "internal" || strings.HasPrefix(p.RelPath, "internal/")
}

// isTestFile reports whether f was parsed from a _test.go file. Checks whose
// rules only govern production code (clock-discipline, shard-exclusivity,
// published-escape) use it to skip test sources when -tests is on.
func (p *Package) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	Standard     bool
	ForTest      string // for test variants: the import path under test
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path, Dir string }
	Error        *struct{ Err string }
}

func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// load resolves patterns with the go tool, parses every matched module
// package, and type-checks it against the export data of its dependencies.
// Only files of the default build configuration are analyzed (build-tag-gated
// hydradebug variants cannot coexist in one type-check pass anyway). When
// tests is set, in-package _test.go files are checked together with the
// production sources, and external (package foo_test) test files become a
// separate *Package whose importer prefers the test variant of the package
// under test, so export_test.go shims resolve.
func load(dir string, patterns []string, tests bool) ([]*Package, error) {
	const fields = "-json=ImportPath,Dir,Export,Standard,ForTest,GoFiles,TestGoFiles,XTestGoFiles,Module,Error"

	// One walk with -deps -export compiles (or reuses the build cache for)
	// every dependency so the stdlib gc importer can read export data —
	// the stdlib-only substitute for golang.org/x/tools/go/packages. With
	// tests, -test adds the test variants (and their extra dependencies):
	// a variant entry carries ForTest, the import path it recompiles.
	depArgs := []string{"-deps", "-export"}
	if tests {
		depArgs = append(depArgs, "-test")
	}
	deps, err := goList(dir, append(append(depArgs, fields), patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	testExports := map[string]string{}
	for _, p := range deps {
		if p.Export == "" {
			continue
		}
		if p.ForTest != "" {
			// Both the in-package variant ("pkg [pkg.test]") and the
			// external test package ("pkg_test [pkg.test]") carry ForTest;
			// only the former is importable under the package's own path.
			base := p.ImportPath
			if i := strings.Index(base, " ["); i >= 0 {
				base = base[:i]
			}
			if base == p.ForTest {
				testExports[p.ForTest] = p.Export
			}
		} else {
			exports[p.ImportPath] = p.Export
		}
	}

	targets, err := goList(dir, append([]string{fields}, patterns...)...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	lookupIn := func(m map[string]string, path string) (io.ReadCloser, error) {
		if f, ok := m[path]; ok {
			return os.Open(f)
		}
		if f, ok := exports[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		return lookupIn(exports, path)
	})

	check := func(importPath, rel, dir string, names []string, imp types.Importer) (*Package, error) {
		var files []*ast.File
		for _, gf := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		var typeErrs []string
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				typeErrs = append(typeErrs, err.Error())
			},
		}
		pkg, _ := conf.Check(importPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
		}
		return &Package{
			ImportPath: importPath,
			RelPath:    rel,
			Dir:        dir,
			Fset:       fset,
			Files:      files,
			Info:       info,
			Pkg:        pkg,
		}, nil
	}

	var out []*Package
	for _, t := range targets {
		if t.Standard || t.Error != nil && len(t.GoFiles) == 0 {
			continue
		}
		rel := ""
		if t.Module != nil && t.ImportPath != t.Module.Path {
			rel = strings.TrimPrefix(t.ImportPath, t.Module.Path+"/")
		}
		names := t.GoFiles
		if tests {
			names = append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
		}
		p, err := check(t.ImportPath, rel, t.Dir, names, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, p)

		if tests && len(t.XTestGoFiles) > 0 {
			// External test package: imports the package under test by its
			// normal path, but must see the test variant's export data.
			underTest := t.ImportPath
			ximp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
				if path == underTest {
					return lookupIn(testExports, path)
				}
				return lookupIn(exports, path)
			})
			xp, err := check(t.ImportPath+"_test", rel, t.Dir, t.XTestGoFiles, ximp)
			if err != nil {
				return nil, err
			}
			out = append(out, xp)
		}
	}
	return out, nil
}
