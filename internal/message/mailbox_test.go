package message

import (
	"bytes"
	"fmt"
	"testing"

	"hydradb/internal/arena"
	"hydradb/internal/rdma"
)

// ringPair builds a ring mailbox of the given geometry plus a QP from a
// remote writer NIC.
func ringPair(t testing.TB, slotCap, depth int) (*Mailbox, *rdma.QP) {
	t.Helper()
	f := rdma.NewFabric(rdma.Config{})
	cli, srv := f.NewNIC("cli"), f.NewNIC("srv")
	qc, _ := rdma.Connect(cli, srv, depth)
	mr := srv.Register(make([]byte, slotCap*depth), arena.NewWordArea(depth, 2))
	return NewRing(mr, 0, slotCap, depth, 0), qc
}

// TestRingWrapAround drives several times the ring depth of messages through
// a ring while keeping it as full as the window allows, checking FIFO
// delivery and cursor wrap-around.
func TestRingWrapAround(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 16} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			ring, qp := ringPair(t, 256, depth)
			const total = 100
			written, consumed := 0, 0
			for consumed < total {
				// Fill the window: the writer may keep up to depth in flight.
				for written < total && written-consumed < depth {
					body := []byte(fmt.Sprintf("msg-%03d", written))
					if err := ring.WriteVia(qp, body, uint32(written)); err != nil {
						t.Fatal(err)
					}
					written++
				}
				body, seq, ok := ring.Poll()
				if !ok {
					t.Fatalf("ring with %d outstanding polled empty", written-consumed)
				}
				want := fmt.Sprintf("msg-%03d", consumed)
				if seq != uint32(consumed) || string(body) != want {
					t.Fatalf("slot order broken: got seq=%d %q, want seq=%d %q",
						seq, body, consumed, want)
				}
				ring.Consume()
				consumed++
			}
			if _, _, ok := ring.Poll(); ok {
				t.Fatal("drained ring still polls")
			}
		})
	}
}

// TestRingFullBackpressure verifies the owner-side loopback writer observes
// backpressure: depth writes fill the ring, the depth+1st is rejected, and
// consuming one slot readmits exactly one write.
func TestRingFullBackpressure(t *testing.T) {
	f := rdma.NewFabric(rdma.Config{})
	nic := f.NewNIC("loop")
	const depth = 4
	mr := nic.Register(make([]byte, 64*depth), arena.NewWordArea(depth, 2))
	ring := NewRing(mr, 0, 64, depth, 0)

	for i := 0; i < depth; i++ {
		if err := ring.WriteLocal([]byte("m"), uint32(i)); err != nil {
			t.Fatalf("write %d into empty ring: %v", i, err)
		}
	}
	if err := ring.WriteLocal([]byte("overflow"), depth); err != ErrRingFull {
		t.Fatalf("full ring accepted a write: %v", err)
	}
	ring.Consume() // frees slot 0 — exactly where the write cursor points
	if err := ring.WriteLocal([]byte("m"), depth); err != nil {
		t.Fatalf("write after consume: %v", err)
	}
	if err := ring.WriteLocal([]byte("again"), depth+1); err != ErrRingFull {
		t.Fatalf("ring must be full again: %v", err)
	}
	// Drain everything; seqs 1..depth survive in order.
	for want := uint32(1); want <= depth; want++ {
		_, seq, ok := ring.Poll()
		if !ok || seq != want {
			t.Fatalf("drain: seq=%d ok=%v, want %d", seq, ok, want)
		}
		ring.Consume()
	}
}

// TestRingDepthOneEquivalence checks that a depth-1 ring reproduces the
// original single-slot protocol bit for bit: same word indices, same
// indicator encoding, same data placement, and the same alternation
// behavior through the old NewMailbox constructor.
func TestRingDepthOneEquivalence(t *testing.T) {
	f := rdma.NewFabric(rdma.Config{})
	cli, srv := f.NewNIC("cli"), f.NewNIC("srv")
	qc, _ := rdma.Connect(cli, srv, 4)
	oldMR := srv.Register(make([]byte, 1024), arena.NewWordArea(1, 2))
	newMR := srv.Register(make([]byte, 1024), arena.NewWordArea(1, 2))
	oldBox := NewMailbox(oldMR, 0, 1024, 0, 1)
	newBox := NewRing(newMR, 0, 1024, 1, 0)

	body := []byte("identical-payload")
	if err := oldBox.WriteVia(qc, body, 42); err != nil {
		t.Fatal(err)
	}
	if err := newBox.WriteVia(qc, body, 42); err != nil {
		t.Fatal(err)
	}
	// Bit-for-bit: indicator words and data bytes must match.
	for w := 0; w < 2; w++ {
		if oldMR.Words().Load(w) != newMR.Words().Load(w) {
			t.Fatalf("word %d differs: %#x != %#x", w, oldMR.Words().Load(w), newMR.Words().Load(w))
		}
	}
	if !bytes.Equal(oldMR.Data(), newMR.Data()) {
		t.Fatal("data areas differ")
	}
	// Alternation: poll, consume, and the slot is writable again.
	for round := 0; round < 3; round++ {
		for _, mb := range []*Mailbox{oldBox, newBox} {
			got, seq, ok := mb.Poll()
			if !ok || !bytes.Equal(got, body) {
				t.Fatalf("round %d: poll %q %d %v", round, got, seq, ok)
			}
			mb.Consume()
			if mb.Busy() {
				t.Fatal("busy after consume")
			}
			if err := mb.WriteVia(qc, body, uint32(round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if oldMR.Words().Load(0) != newMR.Words().Load(0) {
		t.Fatal("indicators diverged after alternation rounds")
	}
}

// TestRingInOrderVisibility: a message in a later slot must stay invisible
// until the earlier slot is consumed (strict FIFO polling).
func TestRingInOrderVisibility(t *testing.T) {
	ring, qp := ringPair(t, 128, 4)
	if err := ring.WriteVia(qp, []byte("first"), 1); err != nil {
		t.Fatal(err)
	}
	if err := ring.WriteVia(qp, []byte("second"), 2); err != nil {
		t.Fatal(err)
	}
	body, seq, ok := ring.Poll()
	if !ok || seq != 1 || string(body) != "first" {
		t.Fatalf("head of ring: %q %d %v", body, seq, ok)
	}
	// Re-polling without consuming yields the same head slot.
	body2, seq2, _ := ring.Poll()
	if seq2 != 1 || string(body2) != "first" {
		t.Fatal("poll is not idempotent before consume")
	}
	ring.Consume()
	body3, seq3, ok := ring.Poll()
	if !ok || seq3 != 2 || string(body3) != "second" {
		t.Fatalf("second slot: %q %d %v", body3, seq3, ok)
	}
}

// TestRingGeometryValidation: constructors must reject rings that do not fit
// their region.
func TestRingGeometryValidation(t *testing.T) {
	f := rdma.NewFabric(rdma.Config{})
	nic := f.NewNIC("n")
	mr := nic.Register(make([]byte, 256), arena.NewWordArea(2, 2))
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("word overflow", func() { NewRing(mr, 0, 64, 4, 0) })   // 4 slots need 8 words, have 4
	mustPanic("byte overflow", func() { NewRing(mr, 0, 256, 2, 0) })  // 2*256 > 256
	mustPanic("zero depth", func() { NewRing(mr, 0, 64, 0, 0) })      // depth >= 1
	mustPanic("split words", func() { NewMailbox(mr, 0, 256, 0, 2) }) // head/tail not adjacent
	NewRing(mr, 0, 128, 2, 0)                                         // fits: 2 slots, 4 words
}
