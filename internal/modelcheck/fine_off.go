//go:build !hydradebug

package modelcheck

// FineAvailable reports whether word-granularity interleaving is compiled in.
// It requires -tags hydradebug, which arms the invariant.SchedPoint hook that
// arena.WordArea's atomic operations call.
const FineAvailable = false

func armFine(*Run, bool) bool { return false }
func disarmFine()             {}
func setCurrent(*Thread)      {}
func clearCurrent()           {}
func goroutineID() int64      { return 0 }
