// Package timing provides the clock abstraction shared by the live
// middleware and the discrete-event simulator.
//
// All lease arithmetic, expiry checks and latency accounting in hydradb go
// through a Clock so that the same data-plane code can run against the real
// monotonic clock (live mode) or a virtual clock advanced by the simulation
// engine.
package timing

import (
	"sync/atomic"
	"time"
)

// Clock reports the current time in nanoseconds on an arbitrary but
// monotonically non-decreasing scale.
type Clock interface {
	Now() int64
}

// RealClock reads the process monotonic clock.
type RealClock struct {
	base time.Time
}

// NewRealClock returns a Clock backed by time.Since on a fixed base, which
// uses Go's monotonic reading and is immune to wall-clock adjustments.
func NewRealClock() *RealClock {
	return &RealClock{base: time.Now()}
}

// Now reports nanoseconds elapsed since the clock was created.
func (c *RealClock) Now() int64 { return int64(time.Since(c.base)) }

// wall is the process-wide real clock handed out by Wall.
var wall = NewRealClock()

// Wall returns the shared real-time Clock used for liveness deadlines:
// request timeouts, failure detection and idle backoff. Unlike the injected
// data-plane Clock — which may be a stalled ManualClock in deterministic
// tests — wall time always advances, so a dead shard can never suppress a
// client's escape path. Components accept an injectable wall clock and
// default to this one; deterministic harnesses may inject a ManualClock for
// it too and drive timeouts explicitly.
func Wall() Clock { return wall }

// Sleep blocks the calling goroutine for ns nanoseconds of real time. It is
// the single audited real-sleep primitive: data-plane code must not call
// time.Sleep directly (the hydralint clock-discipline check enforces this),
// so every real-time nap in the middleware is visible here.
func Sleep(ns int64) {
	if ns <= 0 {
		return
	}
	time.Sleep(time.Duration(ns))
}

// ManualClock is a virtual clock advanced explicitly. It is safe for
// concurrent use; the simulation engine advances it from a single goroutine
// while live-mode tests may read it from many.
type ManualClock struct {
	now atomic.Int64
}

// NewManualClock returns a ManualClock starting at start nanoseconds.
func NewManualClock(start int64) *ManualClock {
	c := &ManualClock{}
	c.now.Store(start)
	return c
}

// Now reports the current virtual time.
func (c *ManualClock) Now() int64 { return c.now.Load() }

// Set moves the clock to t. Moving backwards is rejected silently so that a
// caller merging timelines cannot violate monotonicity.
func (c *ManualClock) Set(t int64) {
	for {
		cur := c.now.Load()
		if t <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Advance moves the clock forward by d nanoseconds and returns the new time.
func (c *ManualClock) Advance(d int64) int64 {
	if d < 0 {
		d = 0
	}
	return c.now.Add(d)
}
