package simcluster

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hydradb/internal/testutil"
)

// -update regenerates calibration.json from the checked-in benchmark
// snapshot: go test -run TestCalibration -update ./internal/simcluster
var update = flag.Bool("update", false, "regenerate calibration.json from BENCH_PR7.json")

const benchSnapshot = "../../BENCH_PR7.json"

// TestCalibration is the conformance gate between the embedded calibration
// and the live-mode microbenchmark snapshot: every class's sampler mean must
// stay within CalibrationDriftBound of a fresh derivation, and the recipe
// (bench names, distribution shape) must match exactly. Drift beyond the
// bound fails loudly and is resolved by rerunning with -update — never by
// the calibration silently tracking the snapshot.
func TestCalibration(t *testing.T) {
	raw := testutil.Must1(os.ReadFile(benchSnapshot))
	derived := testutil.Must1(DeriveCalibration(raw, filepath.Base(benchSnapshot)))

	if *update {
		out := testutil.Must1(EncodeCalibration(derived))
		testutil.Must(os.WriteFile("calibration.json", out, 0o644))
		t.Logf("calibration.json regenerated from %s", benchSnapshot)
		return
	}

	embedded := DefaultCalibration()
	if embedded.Source != filepath.Base(benchSnapshot) {
		t.Errorf("embedded source = %q, want %q", embedded.Source, filepath.Base(benchSnapshot))
	}
	if got, want := len(embedded.Classes), len(derived.Classes); got != want {
		t.Fatalf("embedded calibration has %d classes, derivation has %d", got, want)
	}
	for _, r := range classRecipes {
		emb, derv := embedded.Classes[r.Class], derived.Classes[r.Class]
		if emb.Dist != derv.Dist || emb.Sigma != derv.Sigma {
			t.Errorf("class %s: shape (%s, %.2f) != derived (%s, %.2f)",
				r.Class, emb.Dist, emb.Sigma, derv.Dist, derv.Sigma)
		}
		if len(emb.Bench) != len(derv.Bench) {
			t.Errorf("class %s: bench recipe %v != derived %v", r.Class, emb.Bench, derv.Bench)
			continue
		}
		for i := range emb.Bench {
			if emb.Bench[i] != derv.Bench[i] {
				t.Errorf("class %s: bench[%d] = %q, derived %q", r.Class, i, emb.Bench[i], derv.Bench[i])
			}
		}
		drift := math.Abs(emb.MeanNs-derv.MeanNs) / derv.MeanNs
		if drift > CalibrationDriftBound {
			t.Errorf("class %s: embedded mean %.1f ns drifted %.0f%% from derived %.1f ns (bound %.0f%%) — rerun with -update",
				r.Class, emb.MeanNs, drift*100, derv.MeanNs, CalibrationDriftBound*100)
		}
	}
}

// TestCalibrationFileCanonical pins that calibration.json is byte-identical
// to what -update would write (guards hand edits that would make -update
// produce spurious diffs).
func TestCalibrationFileCanonical(t *testing.T) {
	onDisk := testutil.Must1(os.ReadFile("calibration.json"))
	reenc := testutil.Must1(EncodeCalibration(DefaultCalibration()))
	if !bytes.Equal(onDisk, reenc) {
		t.Fatalf("calibration.json is not in canonical -update form; rerun go test -run TestCalibration -update")
	}
}

// TestDeriveCalibrationErrors pins the failure modes: missing benchmark,
// non-positive figure, malformed snapshot.
func TestDeriveCalibrationErrors(t *testing.T) {
	if _, err := DeriveCalibration([]byte("{"), "x"); err == nil {
		t.Error("malformed snapshot: want error")
	}
	if _, err := DeriveCalibration([]byte(`{"benchmarks":{}}`), "x"); err == nil {
		t.Error("missing benchmarks: want error")
	}
	if _, err := DeriveCalibration([]byte(`{"benchmarks":{"BenchmarkLiveGet_RDMARead":{"ns_per_op":-1}}}`), "x"); err == nil {
		t.Error("non-positive ns_per_op: want error")
	}
	if _, err := ParseCalibration([]byte(`{"source":"x","classes":{}}`)); err == nil {
		t.Error("calibration missing classes: want error")
	}
}
