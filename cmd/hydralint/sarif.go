package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
)

// Machine-readable emitters: a plain JSON array of diagnostics for scripting
// (-json), and SARIF 2.1.0 for code-scanning upload (-sarif). The SARIF here
// is the minimal valid subset GitHub ingests: one run, one driver with a rule
// per registered check, one result per finding with a physical location
// anchored at %SRCROOT% so annotations land on the right lines regardless of
// the runner's checkout path.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// PartialFingerprints keys the result by check + package + symbol +
	// message (never file:line), so code-scanning backends track a finding
	// across refactors that move code between files or lines.
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifReport builds the SARIF log for a set of findings. Every registered
// check appears as a rule even when it found nothing, so code-scanning UIs
// can show which rules ran.
func sarifReport(diags []Diagnostic) sarifLog {
	rules := make([]sarifRule, 0, len(allChecks))
	for _, c := range allChecks {
		rules = append(rules, sarifRule{ID: c.Name, ShortDescription: sarifMessage{Text: c.Desc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		fps := map[string]string{"hydralintFinding/v1": fingerprint(d)}
		if d.Spec != "" {
			// Spec-attributed findings additionally fingerprint on the spec
			// name instead of the check name, so code-scanning dedup
			// survives a pass rename (publication-order -> spec-order) as
			// long as the protocol itself is unchanged.
			fps["hydralintFinding/v2"] = specFingerprint(d)
		}
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
			PartialFingerprints: fps,
		})
	}
	return sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "hydralint", Rules: rules}}, Results: results}},
	}
}

// fingerprint hashes a finding's nominal identity (check, package, symbol,
// message) into a stable hex token. Position fields are deliberately
// excluded.
func fingerprint(d Diagnostic) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s", d.Check, d.Pkg, d.Symbol, d.Msg)
	return fmt.Sprintf("%016x", h.Sum64())
}

// specFingerprint is fingerprint keyed on the owning spec name rather than
// the check name: the protocol's identity, not the pass's.
func specFingerprint(d Diagnostic) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s", d.Spec, d.Pkg, d.Symbol, d.Msg)
	return fmt.Sprintf("%016x", h.Sum64())
}

func writeSARIF(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifReport(diags))
}

// jsonSchemaVersion identifies the -json envelope shape; bump it whenever a
// field is renamed or removed so scripted consumers can fail loudly instead
// of silently reading zero values.
const jsonSchemaVersion = 2

type jsonReport struct {
	Version  int          `json:"version"`
	Findings []Diagnostic `json:"findings"`
}

// writeJSON emits the findings inside a versioned envelope. Findings is never
// null: an empty run is an empty array, so `jq '.findings | length'` works
// unconditionally. Ordering is the deterministic total order RunLint
// established.
func writeJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Version: jsonSchemaVersion, Findings: diags})
}
