package modelcheck

import (
	"bytes"
	"fmt"

	"hydradb/internal/hashtable"
	"hydradb/internal/hashx"
	"hydradb/internal/kv"
)

// readerplaneModel checks the in-process read plane (DESIGN.md §13): a
// reader goroutine's guardian-validated probe, racing the shard loop's
// out-of-place PUTs and quiescence-gated reclamation, never returns a torn
// or reclaimed value.
//
// The reader re-implements kv.ProbeGet split into scheduler steps — root
// probe + publication/guardian validation, then the byte copy broken in TWO
// steps so a free-and-reuse between them manifests as a torn value. The
// server performs the guardian model's ABA sequence (update, reclaim, update
// reusing the freed block), except reclamation now respects the ReadGate:
// with the gate honored, the free pass cannot land between the reader's copy
// steps, because the probe section is open for their whole span.
//
// The seeded bug is a reader that skips the gate (no BeginProbe/EndProbe):
// the server then reclaims and reuses the block mid-copy, and the probe
// returns bytes from two different items — exactly the tear the quiescence
// protocol exists to prevent. Unlike the one-sided guardian model, no lease
// algebra or environment assumption saves the bugged reader: in-process
// probes are licensed by the gate alone.
var readerplaneModel = Model{
	Name:  "readerplane",
	Desc:  "read-plane probe vs. shard-loop PUT + gated reclaim: no torn or reclaimed value",
	Bug:   "reader probes without opening its ReadGate section",
	Setup: setupReaderplane,
}

func setupReaderplane(r *Run, bug bool) {
	// Four-byte values of equal length: updates land in equally sized arena
	// blocks, so the LIFO-reuse PUT overwrites exactly the bytes a stalled
	// reader is copying.
	w := newStoreWorld(r, "aaaa")
	gate := kv.NewReadGate(1)
	w.st.AttachReadGate(gate)
	slot := gate.Slot(0)

	r.Spawn("server", func(t *Thread) {
		t.Step("store", func() {
			w.tick++
			w.put(r, "aaaa", "cccc")
		})
		reclaimed := false
		t.Await("store,clock", func() bool {
			if w.readerDone {
				return true
			}
			due, ok := w.st.NextReclaimDue()
			return ok && due <= w.clock.Now() && gate.Quiescent()
		}, func() {
			w.tick++
			if due, ok := w.st.NextReclaimDue(); ok && due <= w.clock.Now() {
				if w.st.ReclaimDue() == 0 {
					// Deferred: the cond saw the gate quiescent, so the
					// store must agree (cond and body run in one step).
					t.Fail("ReclaimDue deferred a due pass with a quiescent gate")
				}
				reclaimed = true
			}
		})
		if reclaimed {
			t.Step("store", func() {
				w.tick++
				// Reuses the freed arena block and word group: ABA under
				// the reader's feet.
				w.put(r, "cccc", "bbbb")
			})
		}
	})

	r.Spawn("reader", func(t *Thread) {
		var (
			ref       uint64
			dataOff   int
			itemLen   int
			guardTick int
			data      []byte
			probing   bool
		)
		// Probe + validate: section open, root bucket scan, publication
		// word, guardian. All single-word atomic reads in the real path;
		// grouped here because no server step can interleave a multi-word
		// inconsistency into them (each is individually validated).
		t.Step("store", func() {
			w.tick++
			if !bug {
				slot.BeginProbe()
			}
			var cands [hashtable.SlotsPerBucket]uint64
			n, ok := w.st.Table().ProbeRoot(hashx.Hash(w.key), &cands)
			if !ok || n == 0 {
				return
			}
			ref = cands[0]
			pw := w.st.PubWord(ref)
			if pw == 0 {
				ref = 0
				return
			}
			metaIdx := uint32(pw) - 1
			dataOff = int(uint32(pw >> 32))
			if w.st.Guardian(metaIdx) != kv.GuardianLive {
				ref = 0
				return
			}
			guardTick = w.tick
			raw := w.st.ArenaData()
			k, v, ok := kv.DecodeItem(raw[dataOff:])
			if !ok || !bytes.Equal(k, w.key) {
				ref = 0
				return
			}
			itemLen = kv.ItemSize(len(k), len(v))
			data = make([]byte, 0, itemLen)
			probing = true
		})
		if probing {
			// The byte copy, split so reclamation can interleave: the real
			// probe's copy/encode is not atomic with its validation.
			t.Step("store", func() {
				w.tick++
				data = append(data, w.st.ArenaData()[dataOff:dataOff+itemLen-2]...)
			})
			t.Step("store,clock", func() {
				w.tick++
				data = append(data, w.st.ArenaData()[dataOff+itemLen-2:dataOff+itemLen]...)
				if !bug {
					slot.EndProbe()
				}
				k, v, ok := kv.DecodeItem(data)
				if !ok || !bytes.Equal(k, w.key) {
					t.Fail("probe copied bytes that no longer decode to the probed key (ref %d)", ref)
				}
				val := string(v)
				if !w.liveDuring(val, guardTick, w.tick) {
					t.Fail("read-plane GET returned %q, a torn or reclaimed value (guardian checked at tick %d, accepted at tick %d)",
						val, guardTick, w.tick)
				}
				w.accept(val)
			})
		} else {
			// Probe refused (detached mid-validation): close the section
			// and fall back to the shard loop, modeled as an atomic Get.
			t.Step("store", func() {
				w.tick++
				if !bug {
					slot.EndProbe()
				}
				res, ok := w.st.Get(w.key)
				if !ok {
					t.Fail("fallback Get(%q) missed a key that is never deleted", w.key)
				}
				w.accept(string(res.Value))
			})
		}
		t.Step("store,clock", func() {
			w.tick++
			w.readerDone = true
		})
	})

	r.Spawn("clock", w.clockThread(3, 60))

	r.AtEnd(func() error {
		if len(w.accepted) == 0 {
			return fmt.Errorf("reader never obtained a value")
		}
		if !gate.Quiescent() {
			return fmt.Errorf("reader finished with its probe section still open")
		}
		return nil
	})
}
