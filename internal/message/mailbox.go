package message

import (
	"fmt"

	"hydradb/internal/rdma"
)

// Mailbox is one direction of a Shard↔Client connection: a dedicated message
// slot in the owner's memory region that the remote side fills with a single
// RDMA Write and the owner detects by sustained polling (§4.2.1, Fig. 7).
//
// The indicator encoding follows the paper's format: the head indicator both
// announces arrival and carries the message size; the tail indicator (the
// "last word of the message") confirms the body landed — RDMA Write's
// in-order delivery makes head-after-tail publication sufficient. After
// processing, the owner zeroes the indicators ("the shard zeros out the
// request buffer") which doubles as writer-side flow control.
//
// Exactly one message is in flight per mailbox; request/response alternation
// between the paired mailboxes of a connection guarantees exclusivity.
type Mailbox struct {
	mr      *rdma.MemoryRegion
	dataOff int
	dataCap int
	headIdx int
	tailIdx int
}

// indicator layout: bit 63 = present, bits 62..32 = seq (31 bits),
// bits 31..0 = body size.
const presentBit = uint64(1) << 63

func makeIndicator(seq uint32, size int) uint64 {
	return presentBit | uint64(seq&0x7fffffff)<<32 | uint64(uint32(size))
}

func splitIndicator(w uint64) (seq uint32, size int, present bool) {
	return uint32(w>>32) & 0x7fffffff, int(uint32(w)), w&presentBit != 0
}

// NewMailbox creates a mailbox over [dataOff, dataOff+dataCap) of mr's byte
// area, using words headIdx and tailIdx of its word area.
func NewMailbox(mr *rdma.MemoryRegion, dataOff, dataCap, headIdx, tailIdx int) *Mailbox {
	if mr.Words() == nil {
		panic("message: mailbox region needs a word area")
	}
	return &Mailbox{mr: mr, dataOff: dataOff, dataCap: dataCap, headIdx: headIdx, tailIdx: tailIdx}
}

// Capacity reports the largest body the mailbox can carry.
func (m *Mailbox) Capacity() int { return m.dataCap }

// Poll checks for a delivered message (owner side). The returned body
// aliases the mailbox buffer and is valid until Consume.
//
// hydralint:hotpath
func (m *Mailbox) Poll() (body []byte, seq uint32, ok bool) {
	words := m.mr.Words()
	head := words.Load(m.headIdx)
	if head == 0 {
		return nil, 0, false
	}
	seq, size, present := splitIndicator(head)
	if !present || size > m.dataCap {
		return nil, 0, false
	}
	// The paper polls the last word after the size-bearing first word; with
	// in-order RDMA Write, tail==head means the body between them landed.
	if words.Load(m.tailIdx) != head {
		return nil, 0, false
	}
	return m.mr.Data()[m.dataOff : m.dataOff+size], seq, true
}

// Consume clears the indicators, releasing the slot to the writer.
func (m *Mailbox) Consume() {
	words := m.mr.Words()
	words.Store(m.tailIdx, 0)
	words.Store(m.headIdx, 0)
}

// Busy reports whether a message is pending (owner side).
func (m *Mailbox) Busy() bool { return m.mr.Words().Load(m.headIdx) != 0 }

// WriteVia delivers body into the mailbox through qp as one RDMA Write
// (writer side). The caller must respect the alternation protocol: writing
// into a busy mailbox corrupts it.
func (m *Mailbox) WriteVia(qp *rdma.QP, body []byte, seq uint32) error {
	if len(body) > m.dataCap {
		return fmt.Errorf("message: body %d exceeds mailbox capacity %d", len(body), m.dataCap)
	}
	ind := makeIndicator(seq, len(body))
	return qp.WriteIndicated(m.mr, m.dataOff, body, m.tailIdx, m.headIdx, ind)
}

// WriteLocal delivers body written by the region owner itself (used by
// loopback connections when client and shard share a machine).
func (m *Mailbox) WriteLocal(body []byte, seq uint32) error {
	if len(body) > m.dataCap {
		return fmt.Errorf("message: body %d exceeds mailbox capacity %d", len(body), m.dataCap)
	}
	copy(m.mr.Data()[m.dataOff:], body)
	ind := makeIndicator(seq, len(body))
	words := m.mr.Words()
	words.Store(m.tailIdx, ind)
	words.Store(m.headIdx, ind)
	return nil
}
