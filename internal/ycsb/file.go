package ycsb

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Workload file format: the paper pre-generates workloads because "YCSB
// workload generation can be highly CPU-intensive and time-consuming" (§6);
// this codec lets tools generate once and replay many times.
//
//	magic "HYWL1\n"
//	one JSON line: the Spec
//	len(Requests) as little-endian uint64
//	requests: [op u8][keyIdx i64 LE] each
const fileMagic = "HYWL1\n"

// Save writes the workload to w.
func (w *Workload) Save(out io.Writer) error {
	bw := bufio.NewWriterSize(out, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	spec, err := json.Marshal(w.Spec)
	if err != nil {
		return err
	}
	if _, err := bw.Write(append(spec, '\n')); err != nil {
		return err
	}
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(w.Requests)))
	if _, err := bw.Write(n[:]); err != nil {
		return err
	}
	var rec [9]byte
	for _, r := range w.Requests {
		rec[0] = byte(r.Op)
		binary.LittleEndian.PutUint64(rec[1:], uint64(r.KeyIdx))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a workload written by Save. The value payload is regenerated
// deterministically from the spec's seed, so Load(Save(w)) ≡ w.
func Load(in io.Reader) (*Workload, error) {
	br := bufio.NewReaderSize(in, 1<<20)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ycsb: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("ycsb: not a workload file")
	}
	specLine, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("ycsb: reading spec: %w", err)
	}
	var spec Spec
	if err := json.Unmarshal(specLine, &spec); err != nil {
		return nil, fmt.Errorf("ycsb: decoding spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var nbuf [8]byte
	if _, err := io.ReadFull(br, nbuf[:]); err != nil {
		return nil, fmt.Errorf("ycsb: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint64(nbuf[:])
	if n > 1<<32 {
		return nil, fmt.Errorf("ycsb: implausible request count %d", n)
	}
	// Rebuild the value payload exactly as Generate does (first RNG draws).
	base, err := Generate(Spec{
		Records: spec.Records, Operations: 0,
		ReadProportion: spec.ReadProportion, UpdateProportion: spec.UpdateProportion,
		InsertProportion: spec.InsertProportion,
		Dist:             spec.Dist, KeyLen: spec.KeyLen, ValueLen: spec.ValueLen, Seed: spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	w := &Workload{Spec: spec, Requests: make([]Request, n), value: base.value}
	rec := make([]byte, 9)
	for i := range w.Requests {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("ycsb: reading request %d: %w", i, err)
		}
		op := OpType(rec[0])
		if op < OpRead || op > OpInsert {
			return nil, fmt.Errorf("ycsb: bad op %d at request %d", rec[0], i)
		}
		w.Requests[i] = Request{Op: op, KeyIdx: int64(binary.LittleEndian.Uint64(rec[1:]))}
	}
	return w, nil
}
