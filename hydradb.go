// Package hydradb is a resilient RDMA-driven key-value middleware for
// in-memory cluster computing — a reproduction of the SC '15 paper of the
// same name (Wang et al., IBM Research).
//
// HydraDB presents applications with a distributed hash table held in the
// aggregated DRAM of a cluster. Single-threaded shards exclusively manage
// partitions (multicore-friendly, lock-free data path); clients locate
// key-value pairs with consistent hashing and talk to shards over simulated
// RDMA verbs: requests travel as indicator-encapsulated messages via
// one-sided RDMA Writes detected by sustained polling, repeat GETs bypass
// the server CPU entirely with one-sided RDMA Reads through cached remote
// pointers, and writes are replicated to secondary shards through RDMA
// Logging with relaxed acknowledgements. A coordination service plus a SWAT
// (Status Watcher and reAct Team) provide continuous availability: when a
// primary dies, the most caught-up secondary is promoted and routing is
// re-published under a new epoch.
//
// # Quick start
//
//	db, err := hydradb.Start(hydradb.DefaultOptions())
//	if err != nil { ... }
//	defer db.Close()
//
//	c := db.NewClient()
//	c.Put([]byte("greeting"), []byte("hello, RDMA world"))
//	v, _ := c.Get([]byte("greeting"))   // second Get goes one-sided
//
// The package runs the entire cluster in-process over a simulated verbs
// fabric (see DESIGN.md for the substitution argument); the protocol stack —
// mailboxes, guardian words, leases, replication rings, failover — is the
// real one, exercised end-to-end.
package hydradb

import (
	"errors"
	"fmt"
	"time"

	"hydradb/internal/client"
	"hydradb/internal/cluster"
	"hydradb/internal/kv"
	"hydradb/internal/rdma"
	"hydradb/internal/replication"
	"hydradb/internal/stats"
	"hydradb/internal/timing"
)

// Errors surfaced by client operations.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = client.ErrNotFound
)

// Options configures a DB. Zero values select paper-faithful defaults.
type Options struct {
	// ServerMachines and ClientMachines size the simulated cluster (the
	// paper's testbed: 1–7 server machines, clients on the rest of 8).
	ServerMachines int
	ClientMachines int
	// ShardsPerMachine is the number of single-threaded shard processes per
	// server machine (paper default: 4, one per pinned core).
	ShardsPerMachine int
	// Replicas is the number of secondary shards per primary; 0 disables
	// high availability (the paper's cache mode), 1–2 match its HA mode.
	Replicas int
	// StrictReplication selects per-record request/acknowledge instead of
	// RDMA Logging with relaxed acks (§5.2 baseline).
	StrictReplication bool
	// DisableRDMARead turns off client remote-pointer caching ("RDMA Write
	// Only" mode, §6.2).
	DisableRDMARead bool
	// SendRecv replaces RDMA-Write message passing with two-sided verbs
	// (§6.2 baseline).
	SendRecv bool
	// Pipelined runs shards under the decoupled I/O/compute model
	// (§6.2.1 baseline).
	Pipelined bool
	// ReaderThreads > 0 gives every shard a parallel read plane: that many
	// reader goroutines serve message-path GETs concurrently with
	// guardian-validated probes while mutations stay on the shard loop
	// (DESIGN.md §13). 0 keeps the paper's single-goroutine shard.
	ReaderThreads int
	// SharedPointerCache lets collocated clients share remote pointers
	// through a lock-free cache (§4.2.4). Disable for isolated caches.
	SharedPointerCache bool
	// ArenaBytesPerShard and MaxItemsPerShard size each shard's store.
	ArenaBytesPerShard int
	MaxItemsPerShard   int
	// MailboxBytes is the per-slot message buffer capacity and bounds the
	// largest key+value a single request can carry (default 64 KB; the
	// MapReduce cache use case stores multi-MB chunks and raises it).
	MailboxBytes int
	// RingDepth is the number of mailbox slots per connection direction —
	// the ceiling on pipelined requests in flight per connection (default
	// 16). Depth 1 reproduces the paper's single-slot alternation protocol.
	RingDepth int
	// PipelineWindow caps in-flight requests per connection for the batched
	// client calls (Pipeline/MultiGet/MultiPut); zero uses the full ring
	// depth.
	PipelineWindow int
	// Fabric tunes the simulated verbs layer (latency injection, NIC
	// ceilings, QP overheads). Zero is an infinitely fast fabric.
	Fabric rdma.Config
	// Clock overrides the time source (virtual clocks for tests).
	Clock timing.Clock
}

// DefaultOptions mirrors the paper's single-server evaluation setup at a
// laptop-friendly scale.
func DefaultOptions() Options {
	return Options{
		ServerMachines:     1,
		ClientMachines:     1,
		ShardsPerMachine:   4,
		Replicas:           0,
		SharedPointerCache: true,
		ArenaBytesPerShard: 64 << 20,
		MaxItemsPerShard:   1 << 20,
	}
}

// DB is a running HydraDB deployment.
type DB struct {
	opts    Options
	cluster *cluster.Cluster
	clock   timing.Clock
	caches  []client.PtrCache // one shared cache per client machine
	nextCli int
}

// Start builds and launches a deployment.
func Start(opts Options) (*DB, error) {
	if opts.ServerMachines <= 0 {
		opts.ServerMachines = 1
	}
	if opts.ClientMachines <= 0 {
		opts.ClientMachines = 1
	}
	if opts.ShardsPerMachine <= 0 {
		opts.ShardsPerMachine = 4
	}
	if opts.ArenaBytesPerShard <= 0 {
		opts.ArenaBytesPerShard = 64 << 20
	}
	if opts.MaxItemsPerShard <= 0 {
		opts.MaxItemsPerShard = 1 << 20
	}
	clk := opts.Clock
	if clk == nil {
		clk = timing.NewRealClock()
	}
	if opts.Replicas >= opts.ServerMachines && opts.Replicas > 0 && opts.ServerMachines == 1 {
		return nil, errors.New("hydradb: replicas require at least 2 server machines")
	}
	cl, err := cluster.New(cluster.Config{
		ServerMachines:    opts.ServerMachines,
		ClientMachines:    opts.ClientMachines,
		ShardsPerMachine:  opts.ShardsPerMachine,
		Replicas:          opts.Replicas,
		StrictReplication: opts.StrictReplication,
		SendRecv:          opts.SendRecv,
		Pipelined:         opts.Pipelined,
		ReaderThreads:     opts.ReaderThreads,
		MailboxBytes:      opts.MailboxBytes,
		RingDepth:         opts.RingDepth,
		Fabric:            opts.Fabric,
		Log:               replication.LogConfig{},
		Store: kv.Config{
			ArenaBytes: opts.ArenaBytesPerShard,
			MaxItems:   opts.MaxItemsPerShard,
			Clock:      clk,
		},
	})
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, cluster: cl, clock: clk}
	if opts.SharedPointerCache {
		for i := 0; i < opts.ClientMachines; i++ {
			db.caches = append(db.caches, client.NewSharedCache(1<<14))
		}
	}
	return db, nil
}

// Client is a HydraDB client handle. It is not safe for concurrent use; run
// one per goroutine. Clients on the same machine share remote pointers when
// SharedPointerCache is on.
type Client = client.Client

// Batched-operation types for Client.Pipeline, MultiGet, and MultiPut.
type (
	// Op is one operation of a pipelined batch.
	Op = client.Op
	// KV pairs a key with a value for MultiPut.
	KV = client.KV
	// Result is the outcome of one pipelined Op; its value aliases client
	// scratch valid until the next batch.
	Result = client.Result
)

// NewClient opens a client on the next client machine (round-robin).
func (db *DB) NewClient() *Client {
	m := db.nextCli % db.opts.ClientMachines
	db.nextCli++
	return db.NewClientOn(m)
}

// NewClientOn opens a client homed on client machine m.
func (db *DB) NewClientOn(m int) *Client {
	opts := client.Options{
		Clock:          db.clock,
		UseRDMARead:    !db.opts.DisableRDMARead,
		PipelineWindow: db.opts.PipelineWindow,
	}
	if db.opts.SharedPointerCache {
		opts.Cache = db.caches[m%len(db.caches)]
	}
	return db.cluster.NewClient(m, opts)
}

// Renewer is the background lease-renewal agent (§4.2.3).
type Renewer = client.Renewer

// NewRenewer starts nothing yet; it builds a renewal agent on client
// machine m that scans that machine's shared pointer cache every period and
// renews keys accessed at least minAccess times whose leases expire within
// window. Call Start on the result. Requires SharedPointerCache.
func (db *DB) NewRenewer(m int, period, window time.Duration, minAccess uint32) *Renewer {
	return client.NewRenewer(db.NewClientOn(m), period, minAccess, window)
}

// Cluster exposes the underlying deployment for advanced use (failure
// injection, topology introspection, benchmarking).
func (db *DB) Cluster() *cluster.Cluster { return db.cluster }

// Clock exposes the deployment's time source.
func (db *DB) Clock() timing.Clock { return db.clock }

// KillShard abruptly fails a primary shard; the SWAT team will promote a
// secondary if the deployment has replicas.
func (db *DB) KillShard(id uint32) error { return db.cluster.KillShard(id) }

// ShardIDs lists the partitions.
func (db *DB) ShardIDs() []uint32 { return db.cluster.ShardIDs() }

// Stats aggregates per-shard operation counters.
func (db *DB) Stats() stats.OpSnapshot {
	var total stats.OpSnapshot
	for _, id := range db.cluster.ShardIDs() {
		if sh := db.cluster.Shard(id); sh != nil {
			total.Add(sh.Counters.Snapshot())
		}
	}
	return total
}

// Close shuts the deployment down.
func (db *DB) Close() { db.cluster.Stop() }

// String describes the deployment.
func (db *DB) String() string {
	return fmt.Sprintf("hydradb{servers=%d shards=%d replicas=%d}",
		db.opts.ServerMachines,
		db.opts.ServerMachines*db.opts.ShardsPerMachine,
		db.opts.Replicas)
}
