package timing

import (
	"testing"
	"time"
)

func TestRealClockMonotonic(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("real clock not advancing: %d -> %d", a, b)
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(100)
	if c.Now() != 100 {
		t.Fatalf("start = %d", c.Now())
	}
	c.Advance(50)
	if c.Now() != 150 {
		t.Fatalf("after advance = %d", c.Now())
	}
	c.Set(120) // backwards: ignored
	if c.Now() != 150 {
		t.Fatalf("backwards set must be ignored, got %d", c.Now())
	}
	c.Set(500)
	if c.Now() != 500 {
		t.Fatalf("forward set = %d", c.Now())
	}
	c.Advance(-10) // negative advance clamps to 0
	if c.Now() != 500 {
		t.Fatalf("negative advance must be a no-op, got %d", c.Now())
	}
}

func TestManualClockConcurrentReads(t *testing.T) {
	c := NewManualClock(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := int64(0)
		for i := 0; i < 1000; i++ {
			now := c.Now()
			if now < last {
				t.Errorf("clock went backwards: %d -> %d", last, now)
				return
			}
			last = now
		}
	}()
	for i := 0; i < 1000; i++ {
		c.Advance(3)
	}
	<-done
}
