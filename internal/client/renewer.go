package client

import (
	"fmt"
	"sync"
	"time"

	"hydradb/internal/invariant"
)

// Renewer implements the paper's periodic lease renewal: "clients
// periodically send lease renew messages to the servers to extend the
// leases of keys they deem popular so that remote pointers of popular keys
// can remain valid within the local cache" (§4.2.3).
//
// It owns a dedicated Client (its own connections) and scans a shared
// pointer cache on a fixed period, renewing every key whose client-side
// access count clears MinAccess and whose lease expires within the next
// Window. Running it beside the worker clients of a machine keeps their hot
// pointers alive without adding renewal work to their request loops.
type Renewer struct {
	client    *Client
	period    time.Duration
	minAccess uint32
	windowNs  int64

	mu      sync.Mutex
	stopCh  chan struct{}
	doneCh  chan struct{}
	running bool

	// Renewed counts successful renewals (observability/tests).
	Renewed int64
}

// NewRenewer builds a renewal agent over c (which must share the pointer
// cache with the clients it serves). period is the scan interval; minAccess
// and window follow RenewPopular's semantics.
func NewRenewer(c *Client, period time.Duration, minAccess uint32, window time.Duration) *Renewer {
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	if window <= 0 {
		window = 2 * time.Second
	}
	return &Renewer{
		client:    c,
		period:    period,
		minAccess: minAccess,
		windowNs:  int64(window),
	}
}

// Start launches the renewal loop. It is a no-op when already running.
func (r *Renewer) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		return
	}
	r.running = true
	r.stopCh = make(chan struct{})
	r.doneCh = make(chan struct{})
	go r.run(r.stopCh, r.doneCh)
}

func (r *Renewer) run(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	// LIFO: deregisters before done closes, so Stop's join implies drained.
	spawnDone := invariant.Spawned(fmt.Sprintf("client.Renewer/%p", r))
	defer spawnDone()
	ticker := time.NewTicker(r.period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			n := r.client.RenewPopular(r.minAccess, r.windowNs)
			r.mu.Lock()
			r.Renewed += int64(n)
			r.mu.Unlock()
		}
	}
}

// ScanOnce runs a single renewal pass synchronously (tests, manual control).
func (r *Renewer) ScanOnce() int {
	n := r.client.RenewPopular(r.minAccess, r.windowNs)
	r.mu.Lock()
	r.Renewed += int64(n)
	r.mu.Unlock()
	return n
}

// Stop terminates the loop and waits for it to exit.
func (r *Renewer) Stop() {
	r.mu.Lock()
	if !r.running {
		r.mu.Unlock()
		return
	}
	r.running = false
	stop, done := r.stopCh, r.doneCh
	r.mu.Unlock()
	close(stop)
	<-done
	invariant.AssertDrained(fmt.Sprintf("client.Renewer/%p", r))
}

// TotalRenewed reports cumulative successful renewals.
func (r *Renewer) TotalRenewed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Renewed
}
