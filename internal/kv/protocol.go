package kv

import "hydradb/internal/protocolspec"

// GuardianSpec declares the out-of-place PUT protocol (§4.2.3): every
// payload byte of an item lands before the guardian word's release
// store makes it visible to one-sided readers, retraction precedes any
// reuse of the item's memory, and reclamation waits for probe-section
// quiescence. hydralint proves the edges statically; hydramc's
// "guardian" model footprint is generated from this spec.
var GuardianSpec = protocolspec.Spec{
	Name:      "kv-guardian",
	Model:     "guardian",
	Packages:  []string{"hydradb/internal/arena", "hydradb/internal/kv"},
	SchedTags: []string{"word"},
	Words: []protocolspec.Word{{
		Name:      "hydradb/internal/arena.WordArea.words[]",
		Role:      protocolspec.Guardian,
		Footprint: true,
		Writers: []string{
			"(*hydradb/internal/arena.WordArea).AllocGroup",
			"(*hydradb/internal/arena.WordArea).Store",
			"(*hydradb/internal/arena.WordArea).CompareAndSwap",
		},
		Why: "guardian, lease, and indicator words share the registered word area; the area methods are the only direct stores, and call-level ordering is proven by the payload-before-release flow pass",
	}},
	Edges: []protocolspec.Edge{
		{
			Kind: protocolspec.PayloadBeforeRelease,
			From: "hydradb/internal/kv.GuardianLive",
			To:   "hydradb/internal/arena.WordArea.words[]",
			Why:  "storing GuardianLive releases the item to one-sided readers; every payload write must sequence before it",
		},
		{
			Kind: protocolspec.RetractBeforeFree,
			From: "hydradb/internal/kv.GuardianDead",
			To:   "(*hydradb/internal/arena.Arena).Free",
			Why:  "readers validate the guardian after copying; retraction must be visible before the payload bytes can be recycled",
		},
		{
			Kind: protocolspec.RetractBeforeFree,
			From: "hydradb/internal/kv.GuardianDead",
			To:   "(*hydradb/internal/arena.WordArea).FreeGroup",
			Why:  "a recycled word group must never still read GuardianLive for the dead item",
		},
	},
	Reclaims: []protocolspec.Reclaim{{
		Reclaimer: "(*hydradb/internal/kv.Store).reclaimDue",
		Gate:      "(*hydradb/internal/kv.ReadGate).Quiescent",
		Frees: []string{
			"(*hydradb/internal/arena.Arena).Free",
			"(*hydradb/internal/arena.WordArea).FreeGroup",
			"(*hydradb/internal/kv.Store).freeRecord",
		},
		Why: "detached items wait out the grace window and a probe-section quiescence check before their region memory is recycled",
	}},
}

// ReadPlaneSpec declares the parallel read plane's publication words:
// the pub slots readers chase to find an item and the per-slot probe
// section counters the reclaimer's quiescence check reads. Together
// with hashtable.RootSpec it feeds the "readerplane" model footprint.
var ReadPlaneSpec = protocolspec.Spec{
	Name:     "kv-readplane",
	Model:    "readerplane",
	Packages: []string{"hydradb/internal/kv"},
	Words: []protocolspec.Word{
		{
			Name:      "hydradb/internal/kv.Store.pub[]",
			Role:      protocolspec.PubWord,
			Footprint: true,
			Writers: []string{
				"(*hydradb/internal/kv.Store).Put",
				"(*hydradb/internal/kv.Store).freeRecord",
			},
			Why: "a pub slot flips to the new record only after the record is fully built; freeRecord clears it before the slot is recycled",
		},
		{
			Name:      "hydradb/internal/kv.ReadSlot.sec",
			Role:      protocolspec.ReadyWord,
			Footprint: true,
			Writers: []string{
				"(*hydradb/internal/kv.ReadSlot).BeginProbe",
				"(*hydradb/internal/kv.ReadSlot).EndProbe",
			},
			Why: "odd/even probe-section counter; Quiescent treats an odd value as an in-flight reader",
		},
	},
}

// LeaseRenewalSpec is declared next to the lease math in
// internal/lease; the lease word itself lives in kv's word area and
// its sanctioned writer is (*Store).touch. See lease.RenewalSpec.
