// Per-key linearizability checking for register histories, using the
// Wing & Gong / Lowe algorithm (the same search porcupine implements):
// repeatedly try to linearize some minimal operation (one whose invocation
// precedes every un-linearized operation's response), apply it to the model
// state, and backtrack on dead ends. A memoization cache keyed by
// (linearized-set, model state) collapses the exponential blowup for
// register histories.
package history

import (
	"fmt"
	"sort"
	"strings"
)

// regState is the model: a single register that is either absent or holds a
// value.
type regState struct {
	present bool
	value   string
}

// step applies op to the state, reporting whether the op's recorded output
// is consistent. Maybe-applied ops (Err on a mutation) are unconstrained:
// they always step (the search may also defer them to the very end of the
// order, where their effect is unobserved — "never happened").
func step(s regState, op *Op) (regState, bool) {
	switch op.Kind {
	case KindGet:
		if op.Found != s.present {
			return s, false
		}
		if op.Found && op.Output != s.value {
			return s, false
		}
		return s, true
	case KindPut:
		return regState{present: true, value: op.Input}, true
	case KindDelete:
		if !op.Err && op.Found != s.present {
			return s, false
		}
		return regState{}, true
	default:
		return s, false
	}
}

// Violation describes a non-linearizable per-key history.
type Violation struct {
	Key string
	Ops []Op // minimal failing prefix, sorted by invocation
}

// String renders the offending history, one op per line in invocation
// order, for pasting into a bug report.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "key %q: history not linearizable (%d ops)\n", v.Key, len(v.Ops))
	base := int64(0)
	if len(v.Ops) > 0 {
		base = v.Ops[0].Invoke
	}
	for _, op := range v.Ops {
		ret := "inf"
		if op.Return != Infinity {
			ret = fmt.Sprintf("%.3fms", float64(op.Return-base)/1e6)
		}
		out := ""
		switch {
		case op.Err:
			out = " = ERR(maybe applied)"
		case op.Kind == KindGet && op.Found:
			out = fmt.Sprintf(" = %q", op.Output)
		case op.Kind == KindGet:
			out = " = notfound"
		case op.Kind == KindDelete && !op.Found:
			out = " = notfound"
		}
		fmt.Fprintf(&b, "  c%d %s(%q%s)%s  [%.3fms, %s]\n",
			op.Client, op.Kind, op.Key, putArg(op), out,
			float64(op.Invoke-base)/1e6, ret)
	}
	return b.String()
}

func putArg(op Op) string {
	if op.Kind == KindPut {
		return fmt.Sprintf(", %q", op.Input)
	}
	return ""
}

// Check verifies every per-key history in ops linearizes under register
// semantics. It returns nil when all keys pass, or a Violation carrying the
// first offending key's minimal failing prefix.
func Check(ops []Op) *Violation {
	byKey := map[string][]Op{}
	var keys []string
	for _, op := range ops {
		if op.Kind == KindGet && op.Err {
			continue // observed nothing
		}
		if _, seen := byKey[op.Key]; !seen {
			keys = append(keys, op.Key)
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	sort.Strings(keys) // deterministic reporting order
	for _, k := range keys {
		kops := byKey[k]
		sort.SliceStable(kops, func(i, j int) bool { return kops[i].Invoke < kops[j].Invoke })
		if checkKey(kops) {
			continue
		}
		// Minimal failing prefix in invocation order: the full history
		// fails, so some prefix does; report the shortest.
		for n := 1; n <= len(kops); n++ {
			if !checkKey(kops[:n]) {
				return &Violation{Key: k, Ops: append([]Op(nil), kops[:n]...)}
			}
		}
		return &Violation{Key: k, Ops: kops} // unreachable, but stay safe
	}
	return nil
}

// entry is one endpoint (invocation or response) of an op in the
// doubly-linked event list the search walks.
type entry struct {
	op         int // index into the per-key ops slice
	invoke     bool
	time       int64
	prev, next *entry
	match      *entry // invocation's response entry
}

// checkKey runs the WGL search over one key's ops (sorted by invocation).
func checkKey(ops []Op) bool {
	n := len(ops)
	if n == 0 {
		return true
	}
	if n > 64*1024 {
		// The bitset cache key below is O(n/8) bytes per insertion; keep the
		// checker's memory bounded on absurd histories.
		panic("history: per-key history too large to check")
	}
	events := make([]entry, 0, 2*n)
	for i := range ops {
		events = append(events,
			entry{op: i, invoke: true, time: ops[i].Invoke},
			entry{op: i, invoke: false, time: ops[i].Return})
	}
	// Invocations sort before responses on equal timestamps: ties are
	// treated as concurrent, the permissive (sound) direction.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].invoke && !events[j].invoke
	})
	head := &entry{}
	prev := head
	for i := range events {
		e := &events[i]
		prev.next = e
		e.prev = prev
		prev = e
	}
	for i := range events {
		if events[i].invoke {
			for j := range events {
				if !events[j].invoke && events[j].op == events[i].op {
					events[i].match = &events[j]
				}
			}
		}
	}

	lift := func(e *entry) { // unlink invocation + its response
		e.prev.next = e.next
		e.next.prev = e.prev
		m := e.match
		m.prev.next = m.next
		if m.next != nil {
			m.next.prev = m.prev
		}
	}
	unlift := func(e *entry) {
		m := e.match
		m.prev.next = m
		if m.next != nil {
			m.next.prev = m
		}
		e.prev.next = e
		e.next.prev = e
	}

	linearized := make([]uint64, (n+63)/64)
	cacheKey := func(s regState) string {
		var b strings.Builder
		for _, w := range linearized {
			fmt.Fprintf(&b, "%016x", w)
		}
		if s.present {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
		b.WriteString(s.value)
		return b.String()
	}
	cache := map[string]struct{}{}

	type frame struct {
		e     *entry
		state regState
	}
	var stack []frame
	state := regState{}
	e := head.next
	for head.next != nil {
		if e.invoke {
			newState, ok := step(state, &ops[e.op])
			if ok {
				linearized[e.op/64] |= 1 << (e.op % 64)
				key := cacheKey(newState)
				if _, seen := cache[key]; !seen {
					cache[key] = struct{}{}
					stack = append(stack, frame{e: e, state: state})
					state = newState
					lift(e)
					e = head.next
					continue
				}
				linearized[e.op/64] &^= 1 << (e.op % 64)
			}
			e = e.next
		} else {
			// A response with nothing linearizable before it: backtrack.
			if len(stack) == 0 {
				return false
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = f.state
			linearized[f.e.op/64] &^= 1 << (f.e.op % 64)
			unlift(f.e)
			e = f.e.next
		}
	}
	return true
}
