package modelcheck

import (
	"fmt"

	"hydradb/internal/arena"
	"hydradb/internal/message"
	"hydradb/internal/rdma"
)

// mailboxModel checks DESIGN.md invariant (3): the depth-N mailbox slot ring
// stays FIFO and neither side ever overwrites an unconsumed slot, provided
// both sides follow the window-credit rule (one new request per consumed
// response, at most depth requests outstanding).
//
// The model is a 3-thread client/shard exchange over the real
// message.Mailbox rings and the real simulated fabric: a sender that spends
// credits to write requests, a shard that polls, consumes, and responds, and
// a receiver that consumes responses and refunds credits. Because a remote
// RDMA writer cannot see the owner's indicator words, an overwrite would
// silently corrupt a pending message on real hardware; the model checks the
// indicator just before every write and fails if the slot is still busy.
//
// The seeded bug starts the client with depth+1 credits — the off-by-one the
// window rule exists to exclude — and the checker finds a schedule where the
// third request lands on top of an unconsumed first request.
var mailboxModel = Model{
	Name:  "mailbox",
	Desc:  "mailbox slot ring FIFO + no overwrite under the window-credit rule",
	Bug:   "client starts with depth+1 credits (window off by one)",
	Setup: setupMailbox,
}

const (
	mbDepth   = 2  // ring depth in both directions
	mbMsgs    = 3  // requests the client sends (> depth forces credit reuse)
	mbSlotCap = 16 // slot byte capacity
)

func setupMailbox(r *Run, bug bool) {
	fabric := rdma.NewFabric(rdma.Config{}) // zero latency: fully deterministic
	shardNIC := fabric.NewNIC("shard")
	clientNIC := fabric.NewNIC("client")
	clientQP, shardQP := rdma.Connect(clientNIC, shardNIC, mbDepth)

	reqMR := shardNIC.Register(make([]byte, mbDepth*mbSlotCap), arena.NewWordArea(mbDepth, 2))
	respMR := clientNIC.Register(make([]byte, mbDepth*mbSlotCap), arena.NewWordArea(mbDepth, 2))
	reqRing := message.NewRing(reqMR, 0, mbSlotCap, mbDepth, 0)   // client → shard memory
	respRing := message.NewRing(respMR, 0, mbSlotCap, mbDepth, 0) // shard → client memory

	credits := mbDepth
	if bug {
		credits = mbDepth + 1
	}
	var sent, handled, received int

	// precheck fails the schedule when a writer is about to clobber a slot
	// the owner has not consumed. On real hardware the remote writer cannot
	// observe the indicators, so the write would corrupt silently; the model
	// peeks at the head word of the slot the write cursor targets.
	precheck := func(t *Thread, mr *rdma.MemoryRegion, slot int, side string) {
		if mr.Words().Load(2*slot) != 0 {
			t.Fail("%s ring: write into unconsumed slot %d (window-credit rule violated)", side, slot)
		}
	}

	r.Spawn("send", func(t *Thread) {
		for i := 0; i < mbMsgs; i++ {
			i := i
			seq := uint32(i + 1)
			t.Await("req,credit", func() bool { return credits > 0 }, func() {
				credits--
				precheck(t, reqMR, i%mbDepth, "request")
				if err := reqRing.WriteVia(clientQP, []byte{byte(0xA0 + i)}, seq); err != nil {
					t.Fail("request write %d: %v", seq, err)
				}
				sent++
			})
		}
	})

	r.Spawn("shard", func(t *Thread) {
		for i := 0; i < mbMsgs; i++ {
			i := i
			seq := uint32(i + 1)
			t.Await("req,resp", reqRing.Busy, func() {
				body, got, ok := reqRing.Poll()
				if !ok {
					t.Fail("request ring: Busy slot failed to Poll (torn indicator)")
				}
				if got != seq || len(body) != 1 || body[0] != byte(0xA0+i) {
					t.Fail("request ring FIFO violated: want seq %d payload %#x, got seq %d payload %#x",
						seq, 0xA0+i, got, body)
				}
				reqRing.Consume()
				precheck(t, respMR, i%mbDepth, "response")
				if err := respRing.WriteVia(shardQP, []byte{byte(0xB0 + i)}, seq); err != nil {
					t.Fail("response write %d: %v", seq, err)
				}
				handled++
			})
		}
	})

	r.Spawn("recv", func(t *Thread) {
		for i := 0; i < mbMsgs; i++ {
			i := i
			seq := uint32(i + 1)
			t.Await("resp,credit", respRing.Busy, func() {
				body, got, ok := respRing.Poll()
				if !ok {
					t.Fail("response ring: Busy slot failed to Poll (torn indicator)")
				}
				if got != seq || len(body) != 1 || body[0] != byte(0xB0+i) {
					t.Fail("response ring FIFO violated: want seq %d payload %#x, got seq %d payload %#x",
						seq, 0xB0+i, got, body)
				}
				respRing.Consume()
				credits++
				received++
			})
		}
	})

	r.AtEnd(func() error {
		if sent != mbMsgs || handled != mbMsgs || received != mbMsgs {
			return fmt.Errorf("exchange incomplete: sent %d handled %d received %d of %d",
				sent, handled, received, mbMsgs)
		}
		return nil
	})
}
