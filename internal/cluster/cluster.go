// Package cluster assembles a live HydraDB deployment: machines (NICs on
// the simulated fabric), shards pinned to machines, star-formed replica
// groups, the coordination service, the SWAT failover team, and epoch-
// versioned routing for clients (paper §4 Fig. 4 and §5).
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hydradb/internal/client"
	"hydradb/internal/consistent"
	"hydradb/internal/coord"
	"hydradb/internal/kv"
	"hydradb/internal/message"
	"hydradb/internal/rdma"
	"hydradb/internal/replication"
	"hydradb/internal/shard"
	"hydradb/internal/swat"
	"hydradb/internal/timing"
)

// Config sizes a cluster.
type Config struct {
	// ServerMachines hosts shards; ClientMachines hosts clients.
	ServerMachines int
	ClientMachines int
	// ShardsPerMachine primaries per server machine (paper default: 4).
	ShardsPerMachine int
	// Replicas is the number of secondary shards per primary (0 disables HA).
	Replicas int
	// StrictReplication selects the request/ack baseline instead of RDMA
	// Logging (Fig. 13 comparison).
	StrictReplication bool
	// Store sizes each shard's item store (Clock required).
	Store kv.Config
	// Fabric tunes the simulated verbs layer.
	Fabric rdma.Config
	// Log tunes replication rings.
	Log replication.LogConfig
	// MailboxBytes per mailbox slot.
	MailboxBytes int
	// RingDepth is the mailbox slot count per connection direction (pipeline
	// window ceiling). Zero selects the shard default.
	RingDepth int
	// VNodes for the consistent-hash ring.
	VNodes int
	// SWATSize is the watcher-team size (paper: an independent group; the
	// ZooKeeper ensemble is 3–5 machines).
	SWATSize int
	// SessionTimeoutNs for coordination sessions.
	SessionTimeoutNs int64
	// SendRecv makes ALL client connections use the two-sided baseline.
	SendRecv bool
	// Pipelined runs shards under the decoupled execution model (§6.2.1).
	Pipelined bool
	// ReaderThreads > 0 gives every primary shard a parallel read plane of
	// that many reader goroutines (DESIGN.md §13).
	ReaderThreads int
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.ServerMachines == 0 {
		cfg.ServerMachines = 1
	}
	if cfg.ClientMachines == 0 {
		cfg.ClientMachines = 1
	}
	if cfg.ShardsPerMachine == 0 {
		cfg.ShardsPerMachine = 4
	}
	if cfg.MailboxBytes == 0 {
		cfg.MailboxBytes = 64 << 10
	}
	if cfg.SWATSize == 0 {
		cfg.SWATSize = 3
	}
	if cfg.SessionTimeoutNs == 0 {
		cfg.SessionTimeoutNs = 2e9
	}
	if cfg.Store.Clock == nil {
		panic("cluster: Config.Store.Clock required")
	}
	return cfg
}

// secondaryReplica is a secondary shard: a dedicated store fed from the
// primary's replication log, "without servicing other requests from any
// clients" (§5.1).
type secondaryReplica struct {
	machine int
	store   *kv.Store
	log     *replication.Log
	sec     *replication.Secondary
	running bool
}

// group is one replica group: a primary plus its secondaries.
type group struct {
	id          uint32
	machine     int
	shard       *shard.Shard
	pipe        *shard.Pipelined
	secondaries []*secondaryReplica
	session     *coord.Session
}

// Cluster is a running deployment.
type Cluster struct {
	cfg    Config
	clock  timing.Clock
	fabric *rdma.Fabric
	coord  *coord.Server
	team   *swat.Team

	serverNICs []*rdma.NIC
	clientNICs []*rdma.NIC

	mu        sync.Mutex
	groups    map[uint32]*group
	ring      *consistent.Ring
	epoch     atomic.Uint32
	promoting map[uint32]bool // partitions with a promotion in flight

	Promotions atomic.Int32
}

const livePath = "/hydra/live"

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	c := cfg.withDefaults()
	cl := &Cluster{
		cfg:       c,
		clock:     c.Store.Clock,
		fabric:    rdma.NewFabric(c.Fabric),
		coord:     coord.NewServer(c.Store.Clock, c.SessionTimeoutNs),
		groups:    map[uint32]*group{},
		promoting: map[uint32]bool{},
	}
	for i := 0; i < c.ServerMachines; i++ {
		cl.serverNICs = append(cl.serverNICs, cl.fabric.NewNIC(fmt.Sprintf("server-%d", i)))
	}
	for i := 0; i < c.ClientMachines; i++ {
		cl.clientNICs = append(cl.clientNICs, cl.fabric.NewNIC(fmt.Sprintf("client-%d", i)))
	}

	// Shards: IDs are stable partition identities.
	var shardIDs []uint32
	nextID := uint32(1)
	for m := 0; m < c.ServerMachines; m++ {
		for s := 0; s < c.ShardsPerMachine; s++ {
			id := nextID
			nextID++
			shardIDs = append(shardIDs, id)
			if err := cl.startGroup(id, m); err != nil {
				return nil, err
			}
		}
	}
	ring, err := consistent.Build(shardIDs, c.VNodes)
	if err != nil {
		return nil, err
	}
	cl.ring = ring

	// SWAT team watches shard liveness and reacts with promotion (§5.1).
	team, err := swat.NewTeam(cl.coord, c.SWATSize, livePath, cl.react)
	if err != nil {
		return nil, err
	}
	cl.team = team
	return cl, nil
}

// startGroup creates a primary shard (and its secondaries) for partition id
// on the given machine and launches its loops.
func (cl *Cluster) startGroup(id uint32, machine int) error {
	g := &group{id: id, machine: machine}
	sh := shard.New(shard.Config{
		ID:            id,
		NIC:           cl.serverNICs[machine],
		Store:         cl.cfg.Store,
		MailboxBytes:  cl.cfg.MailboxBytes,
		RingDepth:     cl.cfg.RingDepth,
		ReaderThreads: cl.cfg.ReaderThreads,
	})
	sh.SetEpoch(cl.epoch.Load())
	g.shard = sh

	if cl.cfg.Replicas > 0 {
		logCfg := cl.cfg.Log
		logCfg.Strict = cl.cfg.StrictReplication
		primary := replication.NewPrimary(sh.NIC(), logCfg, cl.cfg.Replicas)
		for r := 0; r < cl.cfg.Replicas; r++ {
			secMachine := (machine + 1 + r) % cl.cfg.ServerMachines
			if err := cl.addSecondary(g, primary, secMachine, logCfg); err != nil {
				return err
			}
		}
		sh.AttachPrimary(primary)
	}

	// Liveness registration: an ephemeral znode owned by the shard's own
	// session; its disappearance is the SWAT failure signal.
	g.session = cl.coord.NewSession()
	if err := g.session.EnsurePath(livePath); err != nil {
		return err
	}
	if _, err := g.session.Create(fmt.Sprintf("%s/shard-%d", livePath, id), nil, coord.FlagEphemeral); err != nil {
		return err
	}

	cl.mu.Lock()
	cl.groups[id] = g
	cl.mu.Unlock()

	if cl.cfg.Pipelined {
		g.pipe = shard.NewPipelined(sh, 2, 2)
		go g.pipe.Run()
	} else {
		go sh.Run()
	}
	for _, sec := range g.secondaries {
		sec.running = true
		go sec.sec.Run()
	}
	return nil
}

// addSecondary wires a fresh secondary replica on secMachine to primary.
func (cl *Cluster) addSecondary(g *group, primary *replication.Primary, secMachine int, logCfg replication.LogConfig) error {
	storeCfg := cl.cfg.Store
	store := kv.NewStore(storeCfg)
	secNIC := cl.serverNICs[secMachine]
	qpP, qpS := rdma.Connect(cl.serverNICs[g.machine], secNIC, 16)
	log := replication.NewLog(secNIC, logCfg)
	ackIdx, err := primary.AddSecondary(qpP, log)
	if err != nil {
		return err
	}
	applier := replication.ApplierFunc(func(seq uint64, r replication.Record) error {
		switch r.Op {
		case message.OpPut:
			_, _, err := store.Put(r.Key, r.Val)
			return err
		case message.OpDelete:
			store.Delete(r.Key)
			return nil
		default:
			return fmt.Errorf("cluster: unexpected replicated op %v", r.Op)
		}
	})
	sec := replication.NewSecondary(log, applier, qpS, primary.AckRegion(), ackIdx)
	g.secondaries = append(g.secondaries, &secondaryReplica{
		machine: secMachine,
		store:   store,
		log:     log,
		sec:     sec,
	})
	return nil
}

// react is the SWAT reactor: a shard's liveness node vanished.
func (cl *Cluster) react(name string) {
	var id uint32
	if _, err := fmt.Sscanf(name, "shard-%d", &id); err != nil {
		return
	}
	//hydralint:ignore error-discipline a group with no secondaries has nothing to promote; the next liveness event retries
	_ = cl.Promote(id)
}

// Promote selects the most caught-up secondary of group id, drains its log,
// and restarts the partition on the secondary's machine under a new routing
// epoch (§5.1). It returns an error when the group has no secondaries.
func (cl *Cluster) Promote(id uint32) error {
	cl.mu.Lock()
	g, ok := cl.groups[id]
	if !ok {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: unknown group %d", id)
	}
	if len(g.secondaries) == 0 {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: group %d has no secondaries", id)
	}
	// Promotion replaces a dead primary. With the primary alive this is
	// always a stale or duplicate reaction (the SWAT and a chaos controller
	// may both observe the same failure; the loser of the race arrives after
	// the winner already installed a live primary) — refuse it cleanly.
	if !g.shard.Killed() {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: primary of group %d is alive; refusing promotion", id)
	}
	// Guard against concurrent promotions of the same partition: the SWAT
	// reactor and a chaos controller may both observe the failure. The
	// second caller gets a clean error instead of a double promotion racing
	// over the same secondaries.
	if cl.promoting[id] {
		cl.mu.Unlock()
		return fmt.Errorf("cluster: promotion of group %d already in progress", id)
	}
	cl.promoting[id] = true
	cl.mu.Unlock()
	defer func() {
		cl.mu.Lock()
		delete(cl.promoting, id)
		cl.mu.Unlock()
	}()

	// Stop drain loops, then drain the rings completely: every record the
	// dead primary acknowledged is in secondary memory (the RDMA write
	// completed before the client saw OK), so no acked write can be lost.
	best := -1
	var bestSeq uint64
	for i, sec := range g.secondaries {
		if sec.running {
			sec.sec.Stop()
			sec.running = false
		}
		for sec.sec.PollOnce() {
		}
		if seq := sec.sec.AppliedSeq(); best == -1 || seq > bestSeq {
			best, bestSeq = i, seq
		}
	}
	chosen := g.secondaries[best]

	// New primary adopts the replica store on the secondary's machine.
	newShard := shard.New(shard.Config{
		ID:            id,
		NIC:           cl.serverNICs[chosen.machine],
		Store:         cl.cfg.Store,
		MailboxBytes:  cl.cfg.MailboxBytes,
		RingDepth:     cl.cfg.RingDepth,
		ReaderThreads: cl.cfg.ReaderThreads,
		ExistingStore: chosen.store,
	})

	// Re-establish replication with the surviving secondaries: fresh logs,
	// then re-sync them from the promoted store (idempotent Puts).
	newGroup := &group{id: id, machine: chosen.machine, shard: newShard}
	logCfg := cl.cfg.Log
	logCfg.Strict = cl.cfg.StrictReplication
	if cl.cfg.Replicas > 0 && len(g.secondaries) > 1 {
		primary := replication.NewPrimary(newShard.NIC(), logCfg, cl.cfg.Replicas)
		for i, sec := range g.secondaries {
			if i == best {
				continue
			}
			if err := cl.reattachSecondary(newGroup, primary, sec, logCfg); err != nil {
				return err
			}
		}
		newShard.AttachPrimary(primary)
		// Start the drain loops before re-sync: the replay can exceed the
		// log window and needs live consumers.
		for _, sec := range newGroup.secondaries {
			sec.running = true
			go sec.sec.Run()
		}
		// Re-sync: replay the promoted store into the new logs.
		var syncErr error
		newShard.Store().Range(func(k, v []byte) bool {
			if err := primary.Replicate(replication.Record{Op: message.OpPut, Key: k, Val: v}); err != nil {
				syncErr = err
				return false
			}
			return true
		})
		if syncErr != nil {
			// The drain loops above are already running but the group was
			// never installed in cl.groups, so Stop would never reach them:
			// join them here or they leak.
			for _, sec := range newGroup.secondaries {
				sec.sec.Stop()
				sec.running = false
			}
			return syncErr
		}
	}

	// Publish the new epoch, install the group, re-register liveness.
	epoch := cl.epoch.Add(1)
	newShard.SetEpoch(epoch)
	cl.mu.Lock()
	cl.groups[id] = newGroup
	for _, og := range cl.groups {
		og.shard.SetEpoch(epoch)
	}
	cl.mu.Unlock()

	newGroup.session = cl.coord.NewSession()
	if _, err := newGroup.session.Create(fmt.Sprintf("%s/shard-%d", livePath, id), nil, coord.FlagEphemeral); err != nil {
		return err
	}
	go newShard.Run()
	cl.Promotions.Add(1)
	return nil
}

// reattachSecondary rewires a surviving secondary to a new primary with a
// fresh ring (the old ring belonged to the dead primary's sequence space).
func (cl *Cluster) reattachSecondary(g *group, primary *replication.Primary, old *secondaryReplica, logCfg replication.LogConfig) error {
	secNIC := cl.serverNICs[old.machine]
	qpP, qpS := rdma.Connect(cl.serverNICs[g.machine], secNIC, 16)
	log := replication.NewLog(secNIC, logCfg)
	ackIdx, err := primary.AddSecondary(qpP, log)
	if err != nil {
		return err
	}
	store := old.store
	applier := replication.ApplierFunc(func(seq uint64, r replication.Record) error {
		switch r.Op {
		case message.OpPut:
			_, _, err := store.Put(r.Key, r.Val)
			return err
		case message.OpDelete:
			store.Delete(r.Key)
			return nil
		default:
			return fmt.Errorf("cluster: unexpected replicated op %v", r.Op)
		}
	})
	sec := replication.NewSecondary(log, applier, qpS, primary.AckRegion(), ackIdx)
	g.secondaries = append(g.secondaries, &secondaryReplica{
		machine: old.machine,
		store:   store,
		log:     log,
		sec:     sec,
	})
	return nil
}

// MoveShard migrates a partition to another server machine — the SWAT's
// "notifying certain shards to migrate data to newly joined nodes" (§5.1).
// The primary is stopped gracefully (replication flushed), the partition
// restarts on the target machine under a new routing epoch, and clients'
// cached remote pointers into the old arena fail validation and fall back.
func (cl *Cluster) MoveShard(id uint32, targetMachine int) error {
	if targetMachine < 0 || targetMachine >= len(cl.serverNICs) {
		return fmt.Errorf("cluster: no server machine %d", targetMachine)
	}
	cl.mu.Lock()
	g, ok := cl.groups[id]
	cl.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: unknown shard %d", id)
	}
	// Quiesce: stop serving (in-flight requests complete), flush the log.
	// The coordination session stays alive across a planned move — the
	// liveness znode never blinks, so the SWAT does not mistake the
	// migration for a failure.
	if g.pipe != nil {
		g.pipe.Stop()
	}
	g.shard.Stop()
	for _, sec := range g.secondaries {
		if sec.running {
			sec.sec.Stop()
			sec.running = false
		}
		for sec.sec.PollOnce() {
		}
	}

	// Restart on the target machine, adopting the same store. Items keep
	// their offsets; only the NIC registration changes, so stale client
	// pointers hit the wrong (new connection's) arena region and fail the
	// key check — same recovery path as failover.
	newGroup := &group{id: id, machine: targetMachine}
	newShard := shard.New(shard.Config{
		ID:            id,
		NIC:           cl.serverNICs[targetMachine],
		Store:         cl.cfg.Store,
		MailboxBytes:  cl.cfg.MailboxBytes,
		RingDepth:     cl.cfg.RingDepth,
		ReaderThreads: cl.cfg.ReaderThreads,
		ExistingStore: g.shard.Store(),
	})
	newGroup.shard = newShard
	if cl.cfg.Replicas > 0 && len(g.secondaries) > 0 {
		logCfg := cl.cfg.Log
		logCfg.Strict = cl.cfg.StrictReplication
		primary := replication.NewPrimary(newShard.NIC(), logCfg, cl.cfg.Replicas)
		for _, sec := range g.secondaries {
			if err := cl.reattachSecondary(newGroup, primary, sec, logCfg); err != nil {
				return err
			}
		}
		newShard.AttachPrimary(primary)
		for _, sec := range newGroup.secondaries {
			sec.running = true
			go sec.sec.Run()
		}
	}

	newGroup.session = g.session // liveness continuity: this is not a failure

	epoch := cl.epoch.Add(1)
	newShard.SetEpoch(epoch)
	cl.mu.Lock()
	cl.groups[id] = newGroup
	for _, og := range cl.groups {
		og.shard.SetEpoch(epoch)
	}
	cl.mu.Unlock()
	go newShard.Run()
	return nil
}

// KillShard abruptly fails a primary (test/chaos): the loop dies and its
// coordination session closes, which is what the SWAT leader observes.
func (cl *Cluster) KillShard(id uint32) error {
	cl.mu.Lock()
	g, ok := cl.groups[id]
	cl.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: unknown shard %d", id)
	}
	if g.pipe != nil {
		g.pipe.Stop()
	}
	g.shard.Kill()
	g.session.Close() // ephemeral vanishes -> SWAT reacts
	return nil
}

// Epoch reports the current routing epoch.
func (cl *Cluster) Epoch() uint32 { return cl.epoch.Load() }

// Ring exposes the consistent-hash ring.
func (cl *Cluster) Ring() *consistent.Ring { return cl.ring }

// ShardIDs lists partitions.
func (cl *Cluster) ShardIDs() []uint32 { return cl.ring.Shards() }

// Shard returns the current primary of a partition (test introspection).
func (cl *Cluster) Shard(id uint32) *shard.Shard {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if g, ok := cl.groups[id]; ok {
		return g.shard
	}
	return nil
}

// SecondaryStores exposes a partition's replica stores (test introspection).
func (cl *Cluster) SecondaryStores(id uint32) []*kv.Store {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	g, ok := cl.groups[id]
	if !ok {
		return nil
	}
	out := make([]*kv.Store, 0, len(g.secondaries))
	for _, s := range g.secondaries {
		out = append(out, s.store)
	}
	return out
}

// SecondaryAppliedTotal sums the applied-record counters across all
// secondaries — a race-free convergence signal for tests and monitoring.
func (cl *Cluster) SecondaryAppliedTotal() int64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var total int64
	for _, g := range cl.groups {
		for _, s := range g.secondaries {
			total += s.sec.Applied.Load()
		}
	}
	return total
}

// ClientNIC returns the adaptor of client machine i.
func (cl *Cluster) ClientNIC(i int) *rdma.NIC { return cl.clientNICs[i%len(cl.clientNICs)] }

// ServerNIC returns the adaptor of server machine i.
func (cl *Cluster) ServerNIC(i int) *rdma.NIC { return cl.serverNICs[i%len(cl.serverNICs)] }

// RouteTableFor builds a fresh routing snapshot with new connections from
// nic to every current primary.
func (cl *Cluster) RouteTableFor(nic *rdma.NIC) *client.RouteTable {
	cl.mu.Lock()
	groups := make([]*group, 0, len(cl.groups))
	for _, g := range cl.groups {
		groups = append(groups, g)
	}
	epoch := cl.epoch.Load()
	cl.mu.Unlock()

	eps := make(map[uint32]*shard.Endpoint, len(groups))
	for _, g := range groups {
		eps[g.id] = g.shard.Connect(nic, cl.cfg.SendRecv)
	}
	return &client.RouteTable{Epoch: epoch, Ring: cl.ring, Endpoints: eps}
}

// NewClient creates a client homed on client machine m.
func (cl *Cluster) NewClient(m int, opts client.Options) *client.Client {
	nic := cl.ClientNIC(m)
	if opts.Clock == nil {
		opts.Clock = cl.clock
	}
	if opts.Refresh == nil {
		opts.Refresh = func() *client.RouteTable { return cl.RouteTableFor(nic) }
	}
	return client.New(cl.RouteTableFor(nic), opts)
}

// SWAT exposes the watcher team (leader-failure tests).
func (cl *Cluster) SWAT() *swat.Team { return cl.team }

// Fabric exposes the simulated verbs fabric (fault injection, chaos).
func (cl *Cluster) Fabric() *rdma.Fabric { return cl.fabric }

// GroupMachines reports the server machines hosting partition id: the
// primary's machine first, then each secondary's. Chaos introspection.
func (cl *Cluster) GroupMachines(id uint32) (primary int, secondaries []int, err error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	g, ok := cl.groups[id]
	if !ok {
		return 0, nil, fmt.Errorf("cluster: unknown group %d", id)
	}
	for _, sec := range g.secondaries {
		secondaries = append(secondaries, sec.machine)
	}
	return g.machine, secondaries, nil
}

// Coord exposes the coordination service.
func (cl *Cluster) Coord() *coord.Server { return cl.coord }

// Stop shuts everything down.
func (cl *Cluster) Stop() {
	cl.team.Stop()
	cl.mu.Lock()
	groups := make([]*group, 0, len(cl.groups))
	for _, g := range cl.groups {
		groups = append(groups, g)
	}
	cl.mu.Unlock()
	for _, g := range groups {
		if g.pipe != nil {
			g.pipe.Stop()
		}
		if !g.shard.Killed() {
			g.shard.Stop()
		}
		for _, sec := range g.secondaries {
			if sec.running {
				sec.sec.Stop()
			}
		}
		g.session.Close()
	}
}
