package bench

import (
	"fmt"

	"hydradb/internal/simcluster"
	"hydradb/internal/stats"
)

// Fig09 reproduces Figure 9: peak throughput and average GET/UPDATE latency
// of HydraDB versus Memcached (IPoIB), Redis (IPoIB) and RAMCloud (native
// IB) across the six YCSB workloads, replication disabled ("to achieve fair
// comparison, we disable the data replication", §6.1).
func Fig09(s Scale) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 9 — store comparison (" + s.Name + " scale)",
		Headers: []string{"workload", "store", "Mops/s", "get avg us", "upd avg us", "vs HydraDB"},
	}
	for _, wd := range sixWorkloads {
		w := workload(s, wd.ReadPct, wd.Dist)
		hydra := runHydra(paperTestbed(s, w, simcluster.ModeWriteRead), "HydraDB")
		rows := []simcluster.Result{hydra}
		for _, kind := range []simcluster.BaselineKind{
			simcluster.KindMemcached, simcluster.KindRedis, simcluster.KindRAMCloud,
		} {
			b, err := simcluster.NewBaselineSim(simcluster.BaselineConfig{
				Kind:           kind,
				Clients:        s.Clients,
				ClientMachines: 6,
				Workload:       w,
				Seed:           1,
			})
			if err != nil {
				panic(err)
			}
			rows = append(rows, b.Run(kind.String()))
		}
		for i, r := range rows {
			rel := "1.00x"
			if i > 0 {
				rel = fmt.Sprintf("%.2fx", r.ThroughputMops/hydra.ThroughputMops)
			}
			t.AddRow(wd.Tag, r.Label, f2(r.ThroughputMops), f1(r.GetMeanUs), f1(r.UpdMeanUs), rel)
		}
	}
	return t
}
