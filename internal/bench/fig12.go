package bench

import (
	"fmt"

	"hydradb/internal/simcluster"
	"hydradb/internal/stats"
	"hydradb/internal/ycsb"
)

// fig12Mixes are the three GET/UPDATE mixes of Figure 12.
var fig12Mixes = []int{50, 90, 100}

// Fig12ScaleOut reproduces Figure 12(a,b): normalized aggregated throughput
// as server machines grow 1→7 with one shard instance per machine and 60
// clients spread over 6 machines. Past 2 servers, shards collocate with
// client machines on the 8-machine testbed — the collocation whose NIC
// sharing "attenuates the benefit of adding more NICs" for 100% GET (§6.3).
func Fig12ScaleOut(s Scale, dist ycsb.Distribution) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 12 scale-out — %s (%s scale)", dist, s.Name),
		Headers: []string{"servers", "50%GET norm", "90%GET norm", "100%GET norm"},
	}
	base := map[int]float64{}
	rows := map[int][]string{}
	for _, readPct := range fig12Mixes {
		w := workload(s, readPct, dist)
		for servers := 1; servers <= 7; servers++ {
			cfg := paperTestbed(s, w, simcluster.ModeWriteRead)
			cfg.ServerMachines = machineRange(servers)
			cfg.ShardsPerMachine = 1
			cfg.Clients = 60
			r := runHydra(cfg, fmt.Sprintf("%d servers", servers))
			if servers == 1 {
				base[readPct] = r.ThroughputMops
			}
			norm := r.ThroughputMops / base[readPct]
			rows[servers] = append(rows[servers], f2(norm))
		}
	}
	for servers := 1; servers <= 7; servers++ {
		t.AddRow(append([]string{fmt.Sprintf("%d", servers)}, rows[servers]...)...)
	}
	return t
}

// Fig12ScaleUp reproduces Figure 12(c,d): normalized throughput as shard
// instances on a single machine grow 1→8 under 60 clients. The QP-count
// driver overhead (shards × clients connections) and the NIC ceiling flatten
// the curve beyond ~5 shards (§6.3).
func Fig12ScaleUp(s Scale, dist ycsb.Distribution) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 12 scale-up — %s (%s scale)", dist, s.Name),
		Headers: []string{"shards", "50%GET norm", "90%GET norm", "100%GET norm"},
	}
	base := map[int]float64{}
	rows := map[int][]string{}
	for _, readPct := range fig12Mixes {
		w := workload(s, readPct, dist)
		for shards := 1; shards <= 8; shards++ {
			cfg := paperTestbed(s, w, simcluster.ModeWriteRead)
			cfg.ShardsPerMachine = shards
			cfg.Clients = 60
			r := runHydra(cfg, fmt.Sprintf("%d shards", shards))
			if shards == 1 {
				base[readPct] = r.ThroughputMops
			}
			rows[shards] = append(rows[shards], f2(r.ThroughputMops/base[readPct]))
		}
	}
	for shards := 1; shards <= 8; shards++ {
		t.AddRow(append([]string{fmt.Sprintf("%d", shards)}, rows[shards]...)...)
	}
	return t
}

func machineRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Fig13 reproduces Figure 13: average INSERT latency under no replication,
// strict request/acknowledge, and RDMA Logging replication with 1 and 2
// replicas, across client counts (§6.4).
func Fig13(s Scale) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 13 — replication cost (" + s.Name + " scale)",
		Headers: []string{"clients", "mode", "replicas", "insert avg us", "vs no-repl"},
	}
	ops := s.Ops / 2
	w := insertWorkload(s, ops)
	for _, clients := range []int{1, 2, 4, 8, 16} {
		run := func(replicas int, strict bool) simcluster.Result {
			cfg := paperTestbed(s, w, simcluster.ModeWriteOnly)
			cfg.ShardsPerMachine = 1 // "a single shard instance" (§6.4)
			cfg.Clients = clients
			cfg.Replicas = replicas
			cfg.Strict = strict
			cfg.MaxItemsPerShard = ops*3 + 4096
			return runHydra(cfg, "repl")
		}
		base := run(0, false)
		t.AddRow(fmt.Sprintf("%d", clients), "none", "0", f1(base.UpdMeanUs), "-")
		for _, replicas := range []int{1, 2} {
			strict := run(replicas, true)
			logging := run(replicas, false)
			t.AddRow(fmt.Sprintf("%d", clients), "strict req/ack", fmt.Sprintf("%d", replicas),
				f1(strict.UpdMeanUs), pct(strict.UpdMeanUs, base.UpdMeanUs))
			t.AddRow(fmt.Sprintf("%d", clients), "RDMA logging", fmt.Sprintf("%d", replicas),
				f1(logging.UpdMeanUs), pct(logging.UpdMeanUs, base.UpdMeanUs))
		}
	}
	return t
}
