package client

import (
	"runtime"

	"hydradb/internal/message"
	"hydradb/internal/shard"
)

// Op is one operation of a pipelined batch. Code selects the verb (OpGet,
// OpPut, OpDelete pipeline natively; anything else is executed through the
// synchronous path); Val is the OpPut payload.
type Op struct {
	Code message.Op
	Key  []byte
	Val  []byte
}

// KV pairs a key with a value for MultiPut.
type KV struct {
	Key []byte
	Val []byte
}

// Result is the outcome of one pipelined Op. Val aliases the client's
// pipeline scratch arena and is valid until the next pipelined batch; copy
// it to retain it longer.
type Result struct {
	Val     []byte
	Err     error
	Existed bool
}

// Per-op pipeline states.
const (
	statePending uint8 = iota // routed but not yet queued anywhere
	stateQueued               // waiting in a connection queue
	stateIssued               // request written, response outstanding
	stateDone                 // completed inside the pipeline
	stateRetry                // must run through the synchronous path
)

// pipeConn tracks one shard connection inside a batch: the op indexes routed
// to it in submission order, an issue cursor, and a completion cursor. The
// response ring is FIFO, so completions match queue order; a mismatched seq
// can only be the stale leftover of an abandoned earlier request and is
// dropped.
type pipeConn struct {
	ep      *shard.Endpoint
	queue   []int32
	next    int  // queue index of the next op to issue
	head    int  // queue index of the next completion expected
	stopped bool // stop issuing (WrongShard observed: epoch is stale)
}

// pipeScratch is the reusable state behind Pipeline/MultiGet/MultiPut; one
// batch's worth of bookkeeping, grown once and recycled so the steady-state
// pipelined path does not allocate.
type pipeScratch struct {
	results []Result
	state   []uint8
	seqOf   []uint32
	valOff  []int32
	valLen  []int32
	conns   []pipeConn
	vals    []byte // value arena; Result.Val is materialized from it post-pump
	reqBuf  []byte
	ops     []Op     // MultiGet/MultiPut builder
	outs    [][]byte // MultiGet outputs
}

func (p *pipeScratch) reset(n int) {
	p.results = p.results[:0]
	p.state = p.state[:0]
	p.seqOf = p.seqOf[:0]
	p.valOff = p.valOff[:0]
	p.valLen = p.valLen[:0]
	for i := 0; i < n; i++ {
		p.results = append(p.results, Result{})
		p.state = append(p.state, statePending)
		p.seqOf = append(p.seqOf, 0)
		p.valOff = append(p.valOff, 0)
		p.valLen = append(p.valLen, -1)
	}
	p.vals = p.vals[:0]
	p.conns = p.conns[:0]
}

// connFor returns the index of the batch's pipeConn for ep, adding one on
// first use. Batches touch a handful of shards, so a linear scan beats any
// map (and allocates nothing).
func (p *pipeScratch) connFor(ep *shard.Endpoint) int {
	for i := range p.conns {
		if p.conns[i].ep == ep {
			return i
		}
	}
	if len(p.conns) < cap(p.conns) {
		// Recycle the slot (and its queue backing) from an earlier batch.
		p.conns = p.conns[:len(p.conns)+1]
		pc := &p.conns[len(p.conns)-1]
		pc.ep = ep
		pc.queue = pc.queue[:0]
		pc.next, pc.head, pc.stopped = 0, 0, false
		return len(p.conns) - 1
	}
	p.conns = append(p.conns, pipeConn{ep: ep})
	return len(p.conns) - 1
}

// Pipeline executes a batch of operations with up to Options.PipelineWindow
// requests in flight per connection (clamped to the mailbox ring depth),
// matching completions by seq. Ops are issued per connection strictly in
// submission order and rings are FIFO both ways, so operations on the same
// key — which always route to the same shard — retain their order. Any op
// the pipeline cannot finish (epoch-stale routing, timeout, two-sided
// transport, unsupported verb) falls back to the synchronous path with its
// full retry/refresh machinery, again in submission order.
//
// The returned slice and the values inside it are scratch, valid until the
// next pipelined batch on this client.
func (c *Client) Pipeline(ops []Op) []Result {
	p := &c.pipe
	p.reset(len(ops))

	// Route: complete one-sided cache hits immediately, queue message ops on
	// their connection, divert everything the pump cannot carry.
	for i := range ops {
		op := &ops[i]
		switch op.Code {
		case message.OpGet:
			if c.opts.UseRDMARead {
				if e, ok := c.cacheGet(op.Key); ok {
					base := len(p.vals)
					out, hit, err := c.readViaPointerInto(op.Key, e, p.vals)
					p.vals = out
					if err == nil && hit {
						c.ctr.Gets.Inc()
						c.ctr.RDMAReadHits.Inc()
						e.Access.Add(1)
						p.valOff[i] = int32(base)
						p.valLen[i] = int32(len(p.vals) - base)
						p.state[i] = stateDone
						continue
					}
					c.ctr.RDMAReadStale.Inc()
					c.cacheDrop(op.Key, e)
				} else {
					c.ctr.PointerMisses.Inc()
				}
			} else {
				c.ctr.PointerMisses.Inc()
			}
		case message.OpPut, message.OpDelete:
		default:
			p.state[i] = stateRetry
			continue
		}
		ep, err := c.endpointFor(op.Key)
		if err != nil || ep.SendRecv {
			p.state[i] = stateRetry
			continue
		}
		ci := p.connFor(ep)
		p.conns[ci].queue = append(p.conns[ci].queue, int32(i))
		p.state[i] = stateQueued
	}

	c.pump(ops)

	// Anything still queued or in flight after the pump retries
	// synchronously, in submission order. Exception: an issued mutation
	// under AtMostOnceWrites must NOT be re-executed — its request reached
	// the shard's ring and only the response is missing, so a retry could
	// apply it a second time. It fails with the honest ambiguity instead.
	refreshed := false
	for i := range ops {
		if st := p.state[i]; st == stateQueued || st == stateIssued {
			if st == stateIssued && c.opts.AtMostOnceWrites &&
				(ops[i].Code == message.OpPut || ops[i].Code == message.OpDelete) {
				p.results[i].Err = ErrMaybeApplied
				p.state[i] = stateDone
				// A stranded response means the target may be dead: refresh
				// routing once so later operations do not re-target it.
				if !refreshed && c.opts.Refresh != nil {
					c.refreshTable()
					refreshed = true
				}
				continue
			}
			p.state[i] = stateRetry
		}
	}
	for i := range ops {
		if p.state[i] != stateRetry {
			continue
		}
		op := &ops[i]
		switch op.Code {
		case message.OpGet:
			c.ctr.Gets.Inc()
			base := len(p.vals)
			out, err := c.getViaMessage(op.Key, p.vals)
			p.vals = out
			if err != nil {
				p.results[i].Err = err
			} else {
				p.valOff[i] = int32(base)
				p.valLen[i] = int32(len(p.vals) - base)
			}
		case message.OpPut:
			p.results[i].Err = c.Put(op.Key, op.Val)
		case message.OpDelete:
			p.results[i].Err = c.Delete(op.Key)
		case message.OpRenewLease:
			p.results[i].Err = c.Renew(op.Key)
		default:
			p.results[i].Err = ErrRemote
		}
	}

	// Materialize values last: the arena may have grown (and moved) during
	// the batch, so offsets — not subslices — were recorded along the way.
	for i := range p.results {
		if p.valLen[i] >= 0 && p.results[i].Err == nil {
			p.results[i].Val = p.vals[p.valOff[i] : p.valOff[i]+p.valLen[i]]
		}
	}
	return p.results
}

// pump issues and drains the batch across all connections until every
// queued op completes or the request timeout expires.
//
// hydralint:hotpath
func (c *Client) pump(ops []Op) {
	p := &c.pipe
	deadline := c.wall.Now() + int64(c.opts.RequestTimeout)
	for {
		progress := false
		remaining := false
		for ci := range p.conns {
			pc := &p.conns[ci]
			window := pc.ep.ReqBox.Depth()
			if c.opts.PipelineWindow > 0 && c.opts.PipelineWindow < window {
				window = c.opts.PipelineWindow
			}
			// Issue while the window is open. The credit rule — a new request
			// only after an earlier response was consumed — keeps both rings
			// overwrite-free with any window ≤ depth.
			for !pc.stopped && pc.next < len(pc.queue) && pc.next-pc.head < window {
				i := pc.queue[pc.next]
				if c.issueOne(pc, &ops[i], int(i)) {
					progress = true
				}
				pc.next++
			}
			// Drain every completion already delivered.
			for pc.head < pc.next {
				i := pc.queue[pc.head]
				if i < 0 { // hole: issue failed, op went to the retry path
					pc.head++
					continue
				}
				body, seq, ok := pc.ep.RespBox.Poll()
				if !ok {
					break
				}
				if seq != p.seqOf[i] {
					// Stale leftover of an abandoned request: drop it.
					pc.ep.RespBox.Consume()
					continue
				}
				resp, derr := message.DecodeResponse(body)
				if derr != nil || resp.Seq != p.seqOf[i] {
					pc.ep.RespBox.Consume()
					continue
				}
				c.completeOne(pc, &ops[i], int(i), &resp)
				pc.ep.RespBox.Consume()
				pc.head++
				progress = true
			}
			// A stopped conn only waits for in-flight responses; its unissued
			// tail is already destined for the retry path.
			if pc.head < pc.next || (!pc.stopped && pc.head < len(pc.queue)) {
				remaining = true
			}
		}
		if !remaining {
			return
		}
		if !progress {
			if c.wall.Now() > deadline {
				return
			}
			runtime.Gosched()
		}
	}
}

// issueOne encodes and writes one request; on a transport error the op is
// diverted to the retry path and its queue slot becomes a hole.
//
// hydralint:hotpath
func (c *Client) issueOne(pc *pipeConn, op *Op, i int) bool {
	p := &c.pipe
	c.seq++
	c.getReq = message.Request{Op: op.Code, Seq: c.seq, Epoch: c.table.Epoch, Key: op.Key, Val: op.Val}
	p.seqOf[i] = c.seq
	buf := c.pipeReqBuf(c.getReq.EncodedSize())
	n := c.getReq.EncodeTo(buf)
	c.getReq.Key = nil
	c.getReq.Val = nil
	if err := pc.ep.ReqBox.WriteVia(pc.ep.QP, buf[:n], p.seqOf[i]); err != nil {
		p.state[i] = stateRetry
		pc.queue[pc.next] = -1
		return false
	}
	p.state[i] = stateIssued
	return true
}

// pipeReqBuf returns the pipeline encode scratch with capacity for n bytes.
func (c *Client) pipeReqBuf(n int) []byte {
	if cap(c.pipe.reqBuf) < n {
		c.pipe.reqBuf = make([]byte, n)
	}
	return c.pipe.reqBuf[:n]
}

// completeOne records one matched response. The value is copied into the
// batch arena before the mailbox slot is released; op-type counters are
// charged here — completion time — so pipelined and fallback executions
// count exactly once each.
func (c *Client) completeOne(pc *pipeConn, op *Op, i int, resp *message.Response) {
	p := &c.pipe
	if resp.Status == message.StatusWrongShard {
		// Epoch-stale: everything behind it on this conn is stale too.
		// Stop issuing and let the retry path refresh the table.
		c.ctr.RoutingRetries.Inc()
		p.state[i] = stateRetry
		pc.stopped = true
		return
	}
	p.state[i] = stateDone
	r := &p.results[i]
	switch op.Code {
	case message.OpGet:
		c.ctr.Gets.Inc()
		switch resp.Status {
		case message.StatusOK:
			if c.opts.UseRDMARead {
				c.cachePointer(string(op.Key), resp.Ptr, resp.LeaseExp)
			}
			base := len(p.vals)
			p.vals = append(p.vals, resp.Val...)
			p.valOff[i] = int32(base)
			p.valLen[i] = int32(len(resp.Val))
		case message.StatusNotFound:
			r.Err = ErrNotFound
		default:
			r.Err = ErrRemote
		}
	case message.OpPut:
		c.ctr.Updates.Inc()
		if resp.Status != message.StatusOK {
			r.Err = ErrRemote
			return
		}
		r.Existed = resp.Existed
		if c.opts.UseRDMARead {
			c.cachePointer(string(op.Key), resp.Ptr, resp.LeaseExp)
		}
	case message.OpDelete:
		c.ctr.Deletes.Inc()
		if e, ok := c.cacheGet(op.Key); ok {
			c.cacheDrop(op.Key, e)
		}
		switch resp.Status {
		case message.StatusOK:
			r.Existed = true
		case message.StatusNotFound:
			r.Err = ErrNotFound
		default:
			r.Err = ErrRemote
		}
	}
}

// MultiGet fetches keys as one pipelined batch. The returned slice holds one
// entry per key — the value, or nil when the key does not exist — and, like
// Pipeline results, is scratch valid until the next batch. The error is the
// first hard failure (not-found is reported as a nil entry, not an error).
func (c *Client) MultiGet(keys [][]byte) ([][]byte, error) {
	p := &c.pipe
	ops := p.ops[:0]
	for _, k := range keys {
		ops = append(ops, Op{Code: message.OpGet, Key: k})
	}
	p.ops = ops
	res := c.Pipeline(ops)
	outs := p.outs[:0]
	var firstErr error
	for i := range res {
		switch {
		case res[i].Err == nil:
			outs = append(outs, res[i].Val)
		case res[i].Err == ErrNotFound:
			outs = append(outs, nil)
		default:
			outs = append(outs, nil)
			if firstErr == nil {
				firstErr = res[i].Err
			}
		}
	}
	p.outs = outs
	return outs, firstErr
}

// MultiPut stores pairs as one pipelined batch and reports the first
// failure.
func (c *Client) MultiPut(pairs []KV) error {
	p := &c.pipe
	ops := p.ops[:0]
	for _, kv := range pairs {
		ops = append(ops, Op{Code: message.OpPut, Key: kv.Key, Val: kv.Val})
	}
	p.ops = ops
	res := c.Pipeline(ops)
	for i := range res {
		if res[i].Err != nil {
			return res[i].Err
		}
	}
	return nil
}
