package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(300, func() { order = append(order, 3) })
	e.At(100, func() { order = append(order, 1) })
	e.At(200, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if e.Now() != 300 {
		t.Fatalf("final time %d", e.Now())
	}
	if e.Events() != 3 {
		t.Fatalf("events %d", e.Events())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order %v", order)
		}
	}
}

func TestAfterAndChaining(t *testing.T) {
	e := NewEngine(1)
	var times []int64
	e.After(10, func() {
		times = append(times, e.Now())
		e.After(5, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times %v", times)
	}
}

func TestPastEventClamped(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		e.At(50, func() { // in the past: clamps to now
			if e.Now() != 100 {
				t.Errorf("clamped event at %d", e.Now())
			}
		})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 || e.Now() != 20 {
		t.Fatalf("ran=%d now=%d", ran, e.Now())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("final ran=%d", ran)
	}
}

func TestSingleServerResourceSerializes(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 1)
	var finishes []int64
	for i := 0; i < 3; i++ {
		r.Acquire(100, func() { finishes = append(finishes, e.Now()) })
	}
	e.Run()
	if len(finishes) != 3 || finishes[0] != 100 || finishes[1] != 200 || finishes[2] != 300 {
		t.Fatalf("finishes %v", finishes)
	}
	if r.Jobs() != 3 || r.BusyNs() != 300 {
		t.Fatalf("jobs=%d busy=%d", r.Jobs(), r.BusyNs())
	}
	if u := r.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization %f", u)
	}
}

func TestMultiServerResourceParallelizes(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "pool", 2)
	var finishes []int64
	for i := 0; i < 4; i++ {
		r.Acquire(100, func() { finishes = append(finishes, e.Now()) })
	}
	e.Run()
	// Two servers: pairs finish at 100 and 200.
	if finishes[0] != 100 || finishes[1] != 100 || finishes[2] != 200 || finishes[3] != 200 {
		t.Fatalf("finishes %v", finishes)
	}
}

func TestResourceQueueingAfterIdle(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "cpu", 1)
	var finish int64
	e.At(500, func() {
		r.Acquire(100, func() { finish = e.Now() })
	})
	e.Run()
	if finish != 600 {
		t.Fatalf("idle-start job finished at %d", finish)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		r := NewResource(e, "cpu", 2)
		var log []int64
		var issue func(i int)
		issue = func(i int) {
			if i >= 50 {
				return
			}
			cost := int64(e.Rand().Intn(100) + 1)
			r.Acquire(cost, func() {
				log = append(log, e.Now())
				issue(i + 1)
			})
		}
		issue(0)
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("run lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestClockIntegration(t *testing.T) {
	e := NewEngine(1)
	clk := e.Clock()
	e.At(1000, func() {
		if clk.Now() != 1000 {
			t.Errorf("clock = %d inside event", clk.Now())
		}
	})
	e.Run()
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	e.Run()
}
