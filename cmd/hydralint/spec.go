package main

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// The spec-driven verification engine. Packages declare their lock-free
// publication protocols as protocolspec.Spec literals (pure Go literals,
// parsed statically like modelcheck.Footprint); this engine checks the
// declarations against the real code on the def-use/summary layer and
// splits its findings across four checks:
//
//	spec-order     the declared happens-before edges hold on every code
//	               path: the payload-before-release flow pass (allocation
//	               groups, publish/unpublish constants, mutate summaries),
//	               retract-before-free call ordering, and
//	               apply-after-replicate store ordering
//	spec-coverage  every atomic store to a spec'd word is sanctioned — a
//	               Writers entry, a covering apply edge, or a
//	               publish/unpublish constant / publishes function the
//	               flow pass orders
//	spec-drift     the spec names only words, functions, markers, and
//	               hydramc footprints that still exist (a spec that rots
//	               is worse than no spec)
//	spec-guard     the declared torn-read guards still compare against
//	               their bound, and reclaimers call their quiescence gate
//	               before any free
//
// All four share one specModel computed once per Program; each check
// emits only its own category, so restricted runs stay restricted.

// specFinding is one computed finding, held until its check is emitted.
type specFinding struct {
	p     *Package
	pos   token.Pos
	check string
	spec  string
	msg   string
}

// specWordDecl is one parsed protocolspec.Word.
type specWordDecl struct {
	spec      *specDecl
	pos       token.Pos
	name      string
	role      string
	footprint bool
	writers   []string
}

// specEdgeDecl is one parsed protocolspec.Edge.
type specEdgeDecl struct {
	spec *specDecl
	pos  token.Pos
	kind string
	from string
	to   string
}

// specGuardDecl is one parsed protocolspec.Guard.
type specGuardDecl struct {
	spec   *specDecl
	pos    token.Pos
	reader string
	bound  string
}

// specReclaimDecl is one parsed protocolspec.Reclaim.
type specReclaimDecl struct {
	spec      *specDecl
	pos       token.Pos
	reclaimer string
	gate      string
	frees     []string
}

// specDecl is one parsed protocolspec.Spec literal.
type specDecl struct {
	p        *Package
	pos      token.Pos
	name     string
	model    string
	pkgs     []string
	tags     []string
	words    []*specWordDecl
	edges    []*specEdgeDecl
	guards   []*specGuardDecl
	reclaims []*specReclaimDecl
}

// specModel is the whole-program spec view plus every computed finding.
type specModel struct {
	specs    []*specDecl
	findings []specFinding

	// wordDecls indexes every Word entry by nominal word id; a word may
	// be declared by several specs under different roles (the shared
	// word area is a guardian to kv, a ready word to the mailbox, and a
	// lease word to the lease protocol).
	wordDecls map[string][]*specWordDecl
	// writers is the per-word union of Writers entries (coverage
	// sanctioning); leaseWriters additionally exempts lease-word
	// writers from the after-publication flow check.
	writers      map[string]map[string]bool
	leaseWriters map[string]bool
	// pkgSpec attributes flow findings: import path -> first covering
	// spec name ("" for marker-only packages).
	pkgSpec map[string]string
}

func (sm *specModel) add(p *Package, pos token.Pos, check, spec, format string, args ...any) {
	sm.findings = append(sm.findings, specFinding{
		p: p, pos: pos, check: check, spec: spec, msg: fmt.Sprintf(format, args...),
	})
}

func specModelFor(prog *Program) *specModel {
	if prog.specModel != nil {
		return prog.specModel
	}
	sm := &specModel{
		wordDecls:    map[string][]*specWordDecl{},
		writers:      map[string]map[string]bool{},
		leaseWriters: map[string]bool{},
		pkgSpec:      map[string]string{},
	}
	prog.specModel = sm
	sm.parse(prog)
	accessed, stores := sm.sweep(prog)
	sm.checkDrift(prog, accessed)
	sm.checkCoverage(prog, stores)
	sm.checkGuards(prog)
	sm.checkReclaims(prog)
	sm.checkRetractOrder(prog)
	sm.checkApplyOrder(prog)
	sm.flowPass(prog)
	return sm
}

func emitSpecFindings(prog *Program, rep func(*Package) *Reporter, check string) {
	for _, f := range specModelFor(prog).findings {
		if f.check == check {
			rep(f.p).reportSpec(check, f.spec, f.pos, "%s", f.msg)
		}
	}
}

func runSpecOrder(prog *Program, rep func(*Package) *Reporter)    { emitSpecFindings(prog, rep, "spec-order") }
func runSpecCoverage(prog *Program, rep func(*Package) *Reporter) { emitSpecFindings(prog, rep, "spec-coverage") }
func runSpecDrift(prog *Program, rep func(*Package) *Reporter)    { emitSpecFindings(prog, rep, "spec-drift") }
func runSpecGuard(prog *Program, rep func(*Package) *Reporter)    { emitSpecFindings(prog, rep, "spec-guard") }

// ---------------------------------------------------------------------------
// Parsing

// isProtocolSpecLit reports whether cl's type is protocolspec.Spec (matched
// by package-path suffix, so fixture modules with their own stub work).
func isProtocolSpecLit(p *Package, cl *ast.CompositeLit) bool {
	tv, ok := p.Info.Types[cl]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Spec" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/protocolspec")
}

func (sm *specModel) parse(prog *Program) {
	seen := map[string]bool{}
	for _, p := range prog.Pkgs {
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok || !isProtocolSpecLit(p, cl) {
					return true
				}
				sm.parseSpecLit(p, cl)
				return false
			})
		}
	}
	for _, d := range sm.specs {
		for _, w := range d.words {
			sm.wordDecls[w.name] = append(sm.wordDecls[w.name], w)
			for _, fn := range w.writers {
				if sm.writers[w.name] == nil {
					sm.writers[w.name] = map[string]bool{}
				}
				sm.writers[w.name][fn] = true
				if w.role == "lease-word" {
					sm.leaseWriters[fn] = true
				}
			}
		}
		for _, path := range d.pkgs {
			if _, taken := sm.pkgSpec[path]; !taken {
				sm.pkgSpec[path] = d.name
			}
		}
	}
}

func (sm *specModel) parseSpecLit(p *Package, cl *ast.CompositeLit) {
	d := &specDecl{p: p, pos: cl.Pos()}
	// Name first, so parse findings inside the literal carry it.
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
				d.name, _ = constString(p, kv.Value)
			}
		}
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			sm.add(p, elt.Pos(), "spec-drift", d.name,
				"protocolspec.Spec literals must use keyed fields so the spec engine can parse them statically")
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			if d.name == "" {
				sm.add(p, kv.Value.Pos(), "spec-drift", "", "Spec.Name must be a literal string")
			}
		case "Model":
			if s, ok := constString(p, kv.Value); ok {
				d.model = s
			} else {
				sm.add(p, kv.Value.Pos(), "spec-drift", d.name, "Spec.Model must be a literal string")
			}
		case "Packages":
			d.pkgs = sm.specStringList(p, d, kv.Value, "Spec.Packages")
		case "SchedTags":
			d.tags = sm.specStringList(p, d, kv.Value, "Spec.SchedTags")
		case "Words":
			sm.parseSpecElems(p, d, kv.Value, "Spec.Words", func(lit *ast.CompositeLit) {
				w := &specWordDecl{spec: d, pos: lit.Pos()}
				for _, f := range lit.Elts {
					fkv, fkey, ok := sm.specField(p, d, f)
					if !ok {
						continue
					}
					switch fkey {
					case "Name":
						w.name = sm.specString(p, d, fkv.Value, "Word.Name")
					case "Role":
						w.role = sm.specString(p, d, fkv.Value, "Word.Role")
					case "Footprint":
						w.footprint = sm.specBool(p, d, fkv.Value, "Word.Footprint")
					case "Writers":
						w.writers = sm.specStringList(p, d, fkv.Value, "Word.Writers")
					}
				}
				d.words = append(d.words, w)
			})
		case "Edges":
			sm.parseSpecElems(p, d, kv.Value, "Spec.Edges", func(lit *ast.CompositeLit) {
				e := &specEdgeDecl{spec: d, pos: lit.Pos()}
				for _, f := range lit.Elts {
					fkv, fkey, ok := sm.specField(p, d, f)
					if !ok {
						continue
					}
					switch fkey {
					case "Kind":
						e.kind = sm.specString(p, d, fkv.Value, "Edge.Kind")
					case "From":
						e.from = sm.specString(p, d, fkv.Value, "Edge.From")
					case "To":
						e.to = sm.specString(p, d, fkv.Value, "Edge.To")
					}
				}
				d.edges = append(d.edges, e)
			})
		case "Guards":
			sm.parseSpecElems(p, d, kv.Value, "Spec.Guards", func(lit *ast.CompositeLit) {
				g := &specGuardDecl{spec: d, pos: lit.Pos()}
				for _, f := range lit.Elts {
					fkv, fkey, ok := sm.specField(p, d, f)
					if !ok {
						continue
					}
					switch fkey {
					case "Reader":
						g.reader = sm.specString(p, d, fkv.Value, "Guard.Reader")
					case "Bound":
						g.bound = sm.specString(p, d, fkv.Value, "Guard.Bound")
					}
				}
				d.guards = append(d.guards, g)
			})
		case "Reclaims":
			sm.parseSpecElems(p, d, kv.Value, "Spec.Reclaims", func(lit *ast.CompositeLit) {
				rc := &specReclaimDecl{spec: d, pos: lit.Pos()}
				for _, f := range lit.Elts {
					fkv, fkey, ok := sm.specField(p, d, f)
					if !ok {
						continue
					}
					switch fkey {
					case "Reclaimer":
						rc.reclaimer = sm.specString(p, d, fkv.Value, "Reclaim.Reclaimer")
					case "Gate":
						rc.gate = sm.specString(p, d, fkv.Value, "Reclaim.Gate")
					case "Frees":
						rc.frees = sm.specStringList(p, d, fkv.Value, "Reclaim.Frees")
					}
				}
				d.reclaims = append(d.reclaims, rc)
			})
		}
	}
	sm.specs = append(sm.specs, d)
}

// specField unwraps one keyed field of a nested spec element.
func (sm *specModel) specField(p *Package, d *specDecl, elt ast.Expr) (*ast.KeyValueExpr, string, bool) {
	kv, ok := elt.(*ast.KeyValueExpr)
	if !ok {
		sm.add(p, elt.Pos(), "spec-drift", d.name,
			"spec elements must use keyed fields so the spec engine can parse them statically")
		return nil, "", false
	}
	key, ok := kv.Key.(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	return kv, key.Name, true
}

func (sm *specModel) specString(p *Package, d *specDecl, e ast.Expr, what string) string {
	if s, ok := constString(p, e); ok {
		return s
	}
	sm.add(p, e.Pos(), "spec-drift", d.name,
		"%s must be a constant string so the spec engine can parse it statically", what)
	return ""
}

func (sm *specModel) specBool(p *Package, d *specDecl, e ast.Expr, what string) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		sm.add(p, e.Pos(), "spec-drift", d.name, "%s must be a literal bool", what)
		return false
	}
	return constant.BoolVal(tv.Value)
}

func (sm *specModel) specStringList(p *Package, d *specDecl, e ast.Expr, what string) []string {
	cl, ok := unparen(e).(*ast.CompositeLit)
	if !ok {
		sm.add(p, e.Pos(), "spec-drift", d.name, "%s must be a literal []string", what)
		return nil
	}
	var out []string
	for _, elt := range cl.Elts {
		s, ok := constString(p, elt)
		if !ok {
			sm.add(p, elt.Pos(), "spec-drift", d.name, "%s entries must be constant strings", what)
			continue
		}
		out = append(out, s)
	}
	return out
}

func (sm *specModel) parseSpecElems(p *Package, d *specDecl, e ast.Expr, what string, parse func(*ast.CompositeLit)) {
	cl, ok := unparen(e).(*ast.CompositeLit)
	if !ok {
		sm.add(p, e.Pos(), "spec-drift", d.name, "%s must be a literal slice", what)
		return
	}
	for _, elt := range cl.Elts {
		lit, ok := unparen(elt).(*ast.CompositeLit)
		if !ok {
			sm.add(p, elt.Pos(), "spec-drift", d.name, "%s entries must be composite literals", what)
			continue
		}
		parse(lit)
	}
}

// ---------------------------------------------------------------------------
// The atomic sweep (shared by drift and coverage)

// specStore is one atomic write to a spec'd word in production code.
type specStore struct {
	p         *Package
	call      *ast.CallExpr
	pos       token.Pos
	word      string
	enclosing string // FullName of the enclosing function, "" at file scope
}

// sweep walks every loaded package's production files once, collecting the
// set of nominal atomic words actually accessed (drift's existence oracle)
// and every write into a spec'd word (coverage's work list).
func (sm *specModel) sweep(prog *Program) (accessed map[string]bool, stores []specStore) {
	accessed = map[string]bool{}
	seen := map[string]bool{}
	for _, p := range prog.Pkgs {
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			for _, decl := range f.Decls {
				full := ""
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						full = obj.FullName()
					}
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id, pos, ok := atomicAccessWord(p, call)
					if !ok {
						return true
					}
					accessed[id] = true
					if len(sm.wordDecls[id]) > 0 && atomicOpWrites(call) {
						stores = append(stores, specStore{p: p, call: call, pos: pos, word: id, enclosing: full})
					}
					return true
				})
			}
		}
	}
	return accessed, stores
}

// ---------------------------------------------------------------------------
// spec-drift

var specRoles = map[string]bool{
	"guardian": true, "payload-group": true, "pub-word": true,
	"ready-word": true, "commit-word": true, "lease-word": true,
}

var specEdgeKinds = map[string]bool{
	"payload-before-release": true, "retract-before-free": true,
	"apply-after-replicate": true, "flush-before-flip": true,
}

// specOwnerPkg extracts the owning import path from a nominal word or
// function name: "(*hydradb/internal/kv.Store).Put" and
// "hydradb/internal/kv.Store.pub[]" both resolve to "hydradb/internal/kv".
func specOwnerPkg(name string) string {
	s := strings.TrimPrefix(name, "(*")
	s = strings.TrimPrefix(s, "(")
	slash := strings.LastIndex(s, "/")
	dot := strings.Index(s[slash+1:], ".")
	if dot < 0 {
		return ""
	}
	return s[:slash+1+dot]
}

// checkFunc flags a declared function that no loaded package defines.
// Packages outside the run's load set are not judged.
func (sm *specModel) checkFunc(prog *Program, loaded map[string]bool, d *specDecl, pos token.Pos, name string) {
	owner := specOwnerPkg(name)
	if owner == "" || !loaded[owner] {
		return
	}
	if prog.funcs[name] == nil {
		sm.add(d.p, pos, "spec-drift", d.name,
			"spec %s names function %s, but no loaded package declares it; the spec entry is stale", d.name, name)
	}
}

func (sm *specModel) checkDrift(prog *Program, accessed map[string]bool) {
	loaded := map[string]bool{}
	modelcheckLoaded := false
	for _, p := range prog.Pkgs {
		loaded[p.ImportPath] = true
		if p.RelPath == "internal/modelcheck" {
			modelcheckLoaded = true
		}
	}
	m := prog.markersFor()
	fps := parseFootprints(prog)

	for _, d := range sm.specs {
		declared := map[string]*specWordDecl{}
		for _, w := range d.words {
			declared[w.name] = w
			if w.role != "" && !specRoles[w.role] {
				sm.add(d.p, w.pos, "spec-drift", d.name,
					"spec %s declares unknown word role %q; the vocabulary is guardian, payload-group, pub-word, ready-word, commit-word, lease-word", d.name, w.role)
			}
			if owner := specOwnerPkg(w.name); owner != "" && loaded[owner] && !accessed[w.name] {
				sm.add(d.p, w.pos, "spec-drift", d.name,
					"spec %s declares atomic word %s, but no loaded package accesses it; the declaration is stale", d.name, w.name)
			}
			for _, fn := range w.writers {
				sm.checkFunc(prog, loaded, d, w.pos, fn)
			}
		}
		for _, e := range d.edges {
			if !specEdgeKinds[e.kind] {
				sm.add(d.p, e.pos, "spec-drift", d.name,
					"spec %s declares unknown edge kind %q; the vocabulary is payload-before-release, retract-before-free, apply-after-replicate, flush-before-flip", d.name, e.kind)
				continue
			}
			switch e.kind {
			case "payload-before-release":
				if owner := specOwnerPkg(e.from); owner != "" && loaded[owner] {
					if !m.publishConsts[e.from] && !m.publishesFuncs[e.from] {
						sm.add(d.p, e.pos, "spec-drift", d.name,
							"spec %s edge payload-before-release names %s, but it carries no hydralint:publish or hydralint:publishes marker; the flow pass cannot see the release", d.name, e.from)
					}
				}
				if declared[e.to] == nil {
					sm.add(d.p, e.pos, "spec-drift", d.name,
						"spec %s edge targets word %s, which the spec's Words do not declare", d.name, e.to)
				}
			case "retract-before-free":
				if owner := specOwnerPkg(e.from); owner != "" && loaded[owner] && !m.unpublishConsts[e.from] {
					sm.add(d.p, e.pos, "spec-drift", d.name,
						"spec %s edge retract-before-free names %s, but it carries no hydralint:unpublish marker; the flow pass cannot see the retraction", d.name, e.from)
				}
				sm.checkFunc(prog, loaded, d, e.pos, e.to)
			case "apply-after-replicate":
				if strings.Contains(e.from, ".") {
					sm.checkFunc(prog, loaded, d, e.pos, e.from)
				}
				if declared[e.to] == nil {
					sm.add(d.p, e.pos, "spec-drift", d.name,
						"spec %s edge targets word %s, which the spec's Words do not declare", d.name, e.to)
				}
			case "flush-before-flip":
				// Reserved for the durability tier; vocabulary-checked only.
			}
		}
		for _, g := range d.guards {
			sm.checkFunc(prog, loaded, d, g.pos, g.reader)
		}
		for _, rc := range d.reclaims {
			sm.checkFunc(prog, loaded, d, rc.pos, rc.reclaimer)
			sm.checkFunc(prog, loaded, d, rc.pos, rc.gate)
			for _, fn := range rc.frees {
				sm.checkFunc(prog, loaded, d, rc.pos, fn)
			}
		}

		// The generation loop's static side: a spec that feeds a hydramc
		// model must agree with the checked-in footprint.go (whose own
		// agreement with the generated footprints a modelcheck test and
		// `hydramc -footprints` enforce).
		if d.model == "" || !modelcheckLoaded {
			continue
		}
		var fp *fpDecl
		for _, cand := range fps.decls {
			if cand.model == d.model {
				fp = cand
			}
		}
		if fp == nil {
			sm.add(d.p, d.pos, "spec-drift", d.name,
				"spec %s feeds hydramc model %q, but internal/modelcheck declares no footprint for it", d.name, d.model)
			continue
		}
		for _, w := range d.words {
			if !w.footprint {
				continue
			}
			if _, ok := fp.words[w.name]; !ok {
				sm.add(d.p, w.pos, "spec-drift", d.name,
					"spec %s marks word %s for the %q footprint, but footprint.go does not declare it; regenerate (hydramc -footprints)", d.name, w.name, d.model)
			}
		}
		for _, tag := range d.tags {
			if _, ok := fp.tags[tag]; !ok {
				sm.add(d.p, d.pos, "spec-drift", d.name,
					"spec %s declares SchedPoint tag %q for model %q, but footprint.go does not; regenerate (hydramc -footprints)", d.name, tag, d.model)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// spec-coverage

func (sm *specModel) checkCoverage(prog *Program, stores []specStore) {
	m := prog.markersFor()
	applyCovered := map[string]bool{}
	for _, d := range sm.specs {
		for _, e := range d.edges {
			if e.kind == "apply-after-replicate" {
				applyCovered[e.to] = true
			}
		}
	}
	for _, st := range stores {
		if st.enclosing != "" && sm.writers[st.word][st.enclosing] {
			continue
		}
		// A word covered by an apply edge is sanctioned everywhere: any
		// store without a preceding apply call is a spec-order finding,
		// which is the stronger statement.
		if applyCovered[st.word] {
			continue
		}
		if m.publishesFuncs[st.enclosing] || m.unpublishesFuncs[st.enclosing] {
			continue
		}
		if _, vals, ok := atomicOperands(st.p, st.call); ok {
			sanctioned := false
			for _, v := range vals {
				if key, isConst := constKeyOf(st.p, v); isConst && (m.publishConsts[key] || m.unpublishConsts[key]) {
					sanctioned = true
				}
			}
			if sanctioned {
				continue
			}
		}
		decl := sm.wordDecls[st.word][0]
		sm.add(st.p, st.pos, "spec-coverage", decl.spec.name,
			"atomic store to spec'd word %s (role %s) has no covering Writers entry or protocol edge in spec %s; declare the writer or route the store through a declared protocol function",
			st.word, decl.role, decl.spec.name)
	}
}

// ---------------------------------------------------------------------------
// spec-guard

func specComparisonOp(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func specMentionsName(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func (sm *specModel) checkGuards(prog *Program) {
	for _, d := range sm.specs {
		for _, g := range d.guards {
			info := prog.funcs[g.reader]
			if info == nil || info.Decl.Body == nil {
				continue // existence is spec-drift's finding
			}
			found := false
			ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
				if be, ok := n.(*ast.BinaryExpr); ok && specComparisonOp(be.Op) {
					if specMentionsName(be.X, g.bound) || specMentionsName(be.Y, g.bound) {
						found = true
					}
				}
				return !found
			})
			if !found {
				sm.add(info.Pkg, info.Decl.Pos(), "spec-guard", d.name,
					"torn-read guard declared by spec %s: %s has no comparison against %s; the guard was removed or renamed",
					d.name, g.reader, g.bound)
			}
		}
	}
}

func (sm *specModel) checkReclaims(prog *Program) {
	for _, d := range sm.specs {
		for _, rc := range d.reclaims {
			info := prog.funcs[rc.reclaimer]
			if info == nil || info.Decl.Body == nil {
				continue
			}
			frees := map[string]bool{}
			for _, fn := range rc.frees {
				frees[fn] = true
			}
			var gatePos, freePos token.Pos
			var freeName string
			ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, _, ok := prog.resolveCallee(info.Pkg, call)
				if !ok {
					return true
				}
				name := callee.Obj.FullName()
				if name == rc.gate && (gatePos == token.NoPos || call.Pos() < gatePos) {
					gatePos = call.Pos()
				}
				if frees[name] && (freePos == token.NoPos || call.Pos() < freePos) {
					freePos, freeName = call.Pos(), name
				}
				return true
			})
			if freePos != token.NoPos && (gatePos == token.NoPos || gatePos > freePos) {
				sm.add(info.Pkg, freePos, "spec-guard", d.name,
					"reclaimer %s calls %s before its quiescence gate %s (spec %s); an in-flight probe section could still hold a view of the freed memory",
					rc.reclaimer, freeName, rc.gate, d.name)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// spec-order: retract-before-free and apply-after-replicate sub-passes
// (payload-before-release is the flow pass in check_specorder.go)

// forEachProdFunc walks every production FuncDecl exactly once, in
// deterministic package/file order.
func forEachProdFunc(prog *Program, visit func(p *Package, fd *ast.FuncDecl)) {
	seen := map[string]bool{}
	for _, p := range prog.Pkgs {
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					visit(p, fd)
				}
			}
		}
	}
}

// checkRetractOrder: in any function that both stores the retraction
// constant and calls the declared freeing function, the retraction must
// come first — otherwise a one-sided reader can validate against already
// recycled memory. Functions that free without retracting are reclaimers
// (gated by Reclaim declarations) or never published, so they are not
// judged here.
func (sm *specModel) checkRetractOrder(prog *Program) {
	type edge struct{ d *specDecl; from, to string }
	var edges []edge
	for _, d := range sm.specs {
		for _, e := range d.edges {
			if e.kind == "retract-before-free" {
				edges = append(edges, edge{d, e.from, e.to})
			}
		}
	}
	if len(edges) == 0 {
		return
	}
	forEachProdFunc(prog, func(p *Package, fd *ast.FuncDecl) {
		for _, e := range edges {
			var retractPos, freePos token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, a := range call.Args {
					if key, isConst := constKeyOf(p, a); isConst && key == e.from {
						if retractPos == token.NoPos || call.Pos() < retractPos {
							retractPos = call.Pos()
						}
					}
				}
				if callee, _, ok := prog.resolveCallee(p, call); ok && callee.Obj.FullName() == e.to {
					if freePos == token.NoPos || call.Pos() < freePos {
						freePos = call.Pos()
					}
				}
				return true
			})
			if retractPos != token.NoPos && freePos != token.NoPos && freePos < retractPos {
				sm.add(p, freePos, "spec-order", e.d.name,
					"call to %s precedes the retraction store of %s (spec %s, retract-before-free); store the hydralint:unpublish constant before freeing",
					e.to, e.from, e.d.name)
			}
		}
	})
}

// checkApplyOrder: every atomic store to the edge's commit word must be
// preceded, in the same function, by a call to the applying function —
// matched by full name, or by bare method name when From is undotted
// (appliers are usually interface-typed and unresolvable statically).
func (sm *specModel) checkApplyOrder(prog *Program) {
	type edge struct{ d *specDecl; from, to string }
	var edges []edge
	for _, d := range sm.specs {
		for _, e := range d.edges {
			if e.kind == "apply-after-replicate" {
				edges = append(edges, edge{d, e.from, e.to})
			}
		}
	}
	if len(edges) == 0 {
		return
	}
	forEachProdFunc(prog, func(p *Package, fd *ast.FuncDecl) {
		for _, e := range edges {
			applyPos := token.NoPos
			var storePositions []token.Pos
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if specCallMatches(prog, p, call, e.from) {
					if applyPos == token.NoPos || call.Pos() < applyPos {
						applyPos = call.Pos()
					}
					return true
				}
				if id, pos, ok := atomicAccessWord(p, call); ok && id == e.to && atomicOpWrites(call) {
					storePositions = append(storePositions, pos)
				}
				return true
			})
			for _, pos := range storePositions {
				if applyPos == token.NoPos || applyPos > pos {
					sm.add(p, pos, "spec-order", e.d.name,
						"store to %s without a preceding %s call (spec %s, apply-after-replicate); the watermark must not run ahead of the applied record",
						e.to, e.from, e.d.name)
				}
			}
		}
	})
}

// specCallMatches matches a call site against an edge's From function:
// dotted names resolve through the call graph, bare names match the call
// expression's selector or identifier.
func specCallMatches(prog *Program, p *Package, call *ast.CallExpr, from string) bool {
	if strings.Contains(from, ".") {
		callee, _, ok := prog.resolveCallee(p, call)
		return ok && callee.Obj.FullName() == from
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == from
	case *ast.Ident:
		return fun.Name == from
	}
	return false
}
