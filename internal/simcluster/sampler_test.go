package simcluster

import (
	"math"
	"math/rand"
	"testing"

	"hydradb/internal/testutil"
)

// TestSamplerMeans checks each distribution shape empirically: over many
// draws the sample mean must land within 3% of the spec mean (the lognormal
// location parameter is solved for the mean, so this catches a wrong
// mu/sigma formula immediately).
func TestSamplerMeans(t *testing.T) {
	const n = 200_000
	for _, tc := range []struct {
		name string
		spec LatencySpec
	}{
		{"fixed", LatencySpec{Dist: DistFixed, MeanNs: 184.6}},
		{"exponential", LatencySpec{Dist: DistExponential, MeanNs: 594.5}},
		{"lognormal", LatencySpec{Dist: DistLognormal, MeanNs: 706.2, Sigma: 0.25}},
		{"lognormal-wide", LatencySpec{Dist: DistLognormal, MeanNs: 1412.4, Sigma: 0.6}},
	} {
		rng := rand.New(rand.NewSource(1))
		sum := 0.0
		for i := 0; i < n; i++ {
			v := tc.spec.Sample(rng)
			if v < 0 {
				t.Fatalf("%s: negative sample %d", tc.name, v)
			}
			sum += float64(v)
		}
		mean := sum / n
		if rel := math.Abs(mean-tc.spec.MeanNs) / tc.spec.MeanNs; rel > 0.03 {
			t.Errorf("%s: empirical mean %.1f vs spec %.1f (%.1f%% off)", tc.name, mean, tc.spec.MeanNs, rel*100)
		}
	}
}

// TestSamplerDeterministic pins that a fixed seed yields an identical draw
// sequence — required for the scenario golden hashes.
func TestSamplerDeterministic(t *testing.T) {
	spec := LatencySpec{Dist: DistLognormal, MeanNs: 890.8, Sigma: 0.25}
	draw := func() []int64 {
		rng := rand.New(rand.NewSource(99))
		out := make([]int64, 64)
		for i := range out {
			out[i] = spec.Sample(rng)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestSamplersFromCalibration checks the network-term composition: every
// class mean is the calibrated service mean plus its round-trip count times
// the cost-model RTT, and stale/bounce pay two RTTs.
func TestSamplersFromCalibration(t *testing.T) {
	cal := DefaultCalibration()
	cost := DefaultCostModel()
	set := SamplersFromCalibration(cal, cost)
	rtt := 2 * float64(cost.WireNs+cost.NICOpNs)
	for _, tc := range []struct {
		class LatencyClass
		rtts  float64
	}{
		{ClassHit, 1}, {ClassStale, 2}, {ClassMessage, 1}, {ClassBounce, 2}, {ClassProbe, 1},
	} {
		spec := testutil.Must1(set.Class(tc.class))
		want := cal.Classes[tc.class].MeanNs + tc.rtts*rtt
		if math.Abs(spec.MeanNs-want) > 1e-9 {
			t.Errorf("class %s: mean %.1f, want %.1f (service + %.0f RTT)", tc.class, spec.MeanNs, want, tc.rtts)
		}
		if spec.Dist != DistKind(cal.Classes[tc.class].Dist) {
			t.Errorf("class %s: dist %s, want %s", tc.class, spec.Dist, cal.Classes[tc.class].Dist)
		}
	}
	if _, err := set.Class("nope"); err == nil {
		t.Error("unknown class: want error")
	}
}
