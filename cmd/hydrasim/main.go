// Command hydrasim runs named fleet-simulator scenarios: shared-clock
// multi-machine runs with statistically modeled bulk traffic (millions of
// simulated clients in seconds) and full-fidelity tracer clients, emitting
// canonical JSON with a determinism hash and invariant verdicts.
//
// Examples:
//
//	hydrasim -list
//	hydrasim -scenario routing-convergence -scale full -seed 1
//	hydrasim -scenario all -scale smoke -json results.json
//	hydrasim -scenario promotion-storm -bug stuck-promotion   # must exit 1
//
// Exit status is non-zero when any scenario reports invariant violations
// (including deliberately seeded -bug runs — that is the self-test).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hydradb/internal/simcluster"
)

func main() {
	var (
		scenario = flag.String("scenario", "all", "scenario name from -list, or 'all'")
		scale    = flag.String("scale", "smoke", "smoke | full (full = the million-client configuration)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		jsonOut  = flag.String("json", "", "write results JSON to this file ('-' or empty = stdout)")
		list     = flag.Bool("list", false, "list scenarios and exit")
		bug      = flag.String("bug", "", "seed a deliberate defect: drop-bounces | stuck-promotion | ignore-jitter | leak-ops")
	)
	flag.Parse()

	if *list {
		for _, sc := range simcluster.Scenarios() {
			fmt.Printf("%-20s %s\n", sc.Name, sc.Description)
		}
		return
	}
	var sk simcluster.ScaleKind
	switch *scale {
	case "smoke":
		sk = simcluster.ScaleSmoke
	case "full":
		sk = simcluster.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	var names []string
	if *scenario == "all" {
		for _, sc := range simcluster.Scenarios() {
			names = append(names, sc.Name)
		}
	} else {
		if _, ok := simcluster.FindScenario(*scenario); !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (try -list)\n", *scenario)
			os.Exit(2)
		}
		names = []string{*scenario}
	}

	var results []*simcluster.ScenarioResult
	failed := false
	for _, name := range names {
		start := time.Now()
		res, err := simcluster.RunScenario(name, sk, *seed, simcluster.BugKind(*bug))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		results = append(results, res)
		verdict := "ok"
		if len(res.Violations) > 0 {
			verdict = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
			failed = true
		}
		fmt.Fprintf(os.Stderr, "%-20s scale=%-5s seed=%-3d hash=%s wall=%-8s %s\n",
			name, *scale, *seed, res.Hash, wall.Round(time.Millisecond), verdict)
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "    violation: %s\n", v)
		}
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "encode results: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *jsonOut == "" || *jsonOut == "-" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fmt.Fprintf(os.Stderr, "write results: %v\n", err)
			os.Exit(1)
		}
	} else if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}
