package invariant

import (
	"strings"
	"testing"
)

// TestSpawnRegistry exercises the goroutine-leak sanitizer's bookkeeping:
// registration, prefix filtering, deregistration, and the AssertDrained
// panic. Under the default build the registry is compiled out and the test
// only checks the no-op contract.
func TestSpawnRegistry(t *testing.T) {
	done1 := Spawned("test/alpha/1")
	done2 := Spawned("test/alpha/2")
	done3 := Spawned("test/beta/1")

	if !Enabled {
		if got := LiveSpawns(""); got != nil {
			t.Fatalf("disabled LiveSpawns = %v, want nil", got)
		}
		AssertDrained("") // must be a no-op, not a panic
		done1()
		done2()
		done3()
		return
	}

	if got := LiveSpawns("test/alpha/"); len(got) != 2 {
		t.Fatalf("LiveSpawns(test/alpha/) = %v, want 2 entries", got)
	}
	if got := LiveSpawns("test/"); len(got) != 3 {
		t.Fatalf("LiveSpawns(test/) = %v, want 3 entries", got)
	}

	// A live label under the prefix must trip the assertion...
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("AssertDrained(test/beta/) did not panic with a live spawn")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "test/beta/1") {
				t.Fatalf("panic %v does not name the leaked label", r)
			}
		}()
		AssertDrained("test/beta/")
	}()

	// ...and deregistration must clear it. done() is idempotent per label
	// only in the sense that each registration has exactly one deleter.
	done3()
	AssertDrained("test/beta/")
	if got := LiveSpawns("test/"); len(got) != 2 {
		t.Fatalf("after done3, LiveSpawns(test/) = %v, want 2 entries", got)
	}
	done1()
	done2()
	AssertDrained("test/")
}
