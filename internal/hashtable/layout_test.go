package hashtable

import (
	"testing"
	"unsafe"
)

// TestBucketLayoutGolden pins the bucket memory layout with unsafe.Sizeof and
// unsafe.Offsetof: one bucket is exactly one 64-byte cache line — an 8-byte
// header word followed by seven 8-byte slots (§4.1.3). The hydralint layout
// pass checks the same facts from the annotations; this test keeps them true
// even when the linter is not run.
func TestBucketLayoutGolden(t *testing.T) {
	var b Bucket
	if got := unsafe.Sizeof(b); got != 64 {
		t.Fatalf("Bucket is %d bytes, want exactly one 64-byte cache line", got)
	}
	if got := unsafe.Alignof(b); got != 8 {
		t.Fatalf("Bucket alignment is %d, want 8", got)
	}
	if got := unsafe.Offsetof(b.Header); got != 0 {
		t.Fatalf("Header at offset %d, want 0", got)
	}
	if got := unsafe.Offsetof(b.Slots); got != 8 {
		t.Fatalf("Slots start at offset %d, want 8 (directly after the header word)", got)
	}
	if got := unsafe.Sizeof(b.Slots); got != 7*8 {
		t.Fatalf("Slots are %d bytes, want 7 slots x 8 bytes", got)
	}
	if slotsPerBucket != 7 || wordsPerBucket != 8 {
		t.Fatalf("bucket geometry drifted: slotsPerBucket=%d wordsPerBucket=%d", slotsPerBucket, wordsPerBucket)
	}
}

// TestSlotPackingGolden drives the signature/reference packing at the bit
// boundaries: a full 16-bit signature and a full 48-bit reference must
// round-trip without bleeding into each other, and the header filter mask
// must cover exactly the seven slot bits.
func TestSlotPackingGolden(t *testing.T) {
	if sigBits+refBits != 64 {
		t.Fatalf("sigBits+refBits = %d, slot packing must fill one word", sigBits+refBits)
	}
	w := makeSlot(0xffff, refMask)
	if slotSig(w) != 0xffff {
		t.Fatalf("max reference corrupted the signature: got %#x", slotSig(w))
	}
	if slotRef(w) != refMask {
		t.Fatalf("max signature corrupted the reference: got %#x", slotRef(w))
	}
	w = makeSlot(0, refMask)
	if slotSig(w) != 0 {
		t.Fatalf("reference at the 48-bit boundary leaked into the signature: %#x", slotSig(w))
	}
	if filterMask != (1<<slotsPerBucket)-1 {
		t.Fatalf("filterMask %#x does not cover exactly %d slot bits", filterMask, slotsPerBucket)
	}
}
