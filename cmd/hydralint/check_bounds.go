package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// region-bounds: abstract interpretation over offset arithmetic proving that
// every access into an RDMA-registered region is in-bounds and aligned.
//
// A "region" is any slice field or package var marked //hydralint:region (the
// backing stores handed to NIC.Register) and any result of a
// //hydralint:region-view function (Data(), Bytes(), ...). The pass runs the
// def-use interpreter (ssa.go) over every production function and demands, at
// each index or slice of a region:
//
//	lower bound  offset provably >= 0 (type, interval, or dominating guard)
//	upper bound  offset (+length) provably <= len(region) via a dominating
//	             guard fact, a constant capacity, or offset-source provenance
//
// At calls to //hydralint:offset-sink functions (the one-sided RDMA verbs),
// the listed parameters are remote offsets: each must be non-negative and
// either a compile-time constant or derived from a //hydralint:offset-source
// value — raw arithmetic that never touched a validated base cannot be handed
// to the fabric. Stores to //hydralint:offset-source fields must themselves
// be provably non-negative, and stores to //hydralint:aligned n fields must
// prove the value is a multiple of n.
//
// Dynamic invariants the interpreter cannot see (ring-cursor wrap, allocator
// free-list discipline) are suppressed at the access with
// //hydralint:ignore region-bounds <why>; the budget ratchet holds the count.
func runRegionBounds(prog *Program, rep func(*Package) *Reporter) {
	m := prog.markersFor()
	if len(m.regionKeys) == 0 && len(m.regionViewFuncs) == 0 &&
		len(m.offsetSinkFuncs) == 0 && len(m.offsetSourceKeys) == 0 && len(m.alignedKeys) == 0 {
		return
	}
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			if p.isTestFile(f) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				info := prog.funcs[obj.FullName()]
				if info == nil || info.Decl != fd {
					continue // test-variant duplicate of an already-walked decl
				}
				walkFunc(info, func(w *flowWalker, env *absEnv, n ast.Node) {
					boundsVisit(w, env, n, m, rep(info.Pkg))
				})
			}
		}
	}
}

func boundsVisit(w *flowWalker, env *absEnv, n ast.Node, m *progMarkers, r *Reporter) {
	switch n := n.(type) {
	case *ast.IndexExpr:
		key, ok := regionBaseKey(w, n.X, m)
		if !ok {
			return
		}
		checkRegionIndex(w, env, r, n.Pos(), key, n.X, n.Index)
	case *ast.SliceExpr:
		key, ok := regionBaseKey(w, n.X, m)
		if !ok {
			return
		}
		checkRegionSliceBound(w, env, r, n.Pos(), key, n.X, n.Low, false)
		checkRegionSliceBound(w, env, r, n.Pos(), key, n.X, n.High, true)
		if n.Slice3 {
			checkRegionSliceBound(w, env, r, n.Pos(), key, n.X, n.Max, true)
		}
	case *ast.CallExpr:
		checkOffsetSinkCall(w, env, r, n, m)
	case *ast.AssignStmt:
		checkMarkedStores(w, env, r, n, m)
	case *ast.IncDecStmt:
		if key, ok := mixedWordID(w.p, n.X); ok {
			if want := m.alignedKeys[key]; want > 1 {
				r.report("region-bounds", n.Pos(),
					"%s is declared hydralint:aligned %d; ++/-- breaks the alignment invariant", key, want)
			}
		}
	}
}

// regionBaseKey decides whether base is a region access and returns the
// region's display key. Marked fields/vars match by nominal identity; calls
// match when they resolve to a region-view function.
func regionBaseKey(w *flowWalker, base ast.Expr, m *progMarkers) (string, bool) {
	base = unparen(base)
	if key, ok := mixedWordID(w.p, base); ok && m.regionKeys[key] {
		return key, true
	}
	if call, ok := base.(*ast.CallExpr); ok {
		if callee, _, ok := w.prog.resolveCallee(w.p, call); ok && m.regionViewFuncs[callee.Obj.FullName()] {
			return callee.Obj.FullName() + "()", true
		}
	}
	return "", false
}

// proveNonNeg reports whether e is provably >= 0 under env: by interval (an
// unsigned type, a constant, a refined local) or by a dominating-guard fact.
func proveNonNeg(w *flowWalker, env *absEnv, e ast.Expr) bool {
	if w.eval(env, e).nonNeg() {
		return true
	}
	if l := w.lin(env, e); l.ok && env.provesNonNeg(l) {
		return true
	}
	return false
}

// lenLin renders len(base) as a linear expression: a constant for arrays, a
// symbolic "len(<key>)" term for renderable slices, !ok otherwise.
func lenLin(w *flowWalker, base ast.Expr) linExpr {
	if n, fixed := arrayLen(w.p, base); fixed {
		return linConst(n)
	}
	if key, ok := exprKey(base); ok {
		return linTerm("len(" + key + ")")
	}
	return linExpr{}
}

// proveMax reports whether e is provably <= limit - slack under env, where
// limit is a linear rendering of len(base): via the fact set, or via the
// interval when the limit is constant.
func proveMax(w *flowWalker, env *absEnv, base, e ast.Expr, slack int64) bool {
	limit := lenLin(w, base)
	if !limit.ok {
		return false
	}
	if l := w.lin(env, e); l.ok {
		// limit - e - slack >= 0
		if env.provesNonNeg(limit.addScaled(l, -1).addScaled(linConst(slack), -1)) {
			return true
		}
	}
	if len(limit.terms) == 0 {
		if av := w.eval(env, e); av.hiSet && av.hi <= limit.c-slack {
			return true
		}
	}
	return false
}

func checkRegionIndex(w *flowWalker, env *absEnv, r *Reporter, pos token.Pos, key string, base, idx ast.Expr) {
	if !proveNonNeg(w, env, idx) {
		r.report("region-bounds", pos,
			"index into region %s not provably >= 0; guard the offset or derive it from a hydralint:offset-source value", key)
		return
	}
	av := w.eval(env, idx)
	if av.origins != nil {
		return // validated provenance covers the upper bound
	}
	if proveMax(w, env, base, idx, 1) {
		return
	}
	r.report("region-bounds", pos,
		"index into region %s not provably < its length; guard against len(...) or derive the offset from a hydralint:offset-source value", key)
}

// checkRegionSliceBound checks one bound of base[lo:hi:max]. A nil low is 0
// and a nil high is len(base), both trivially in range. upper distinguishes
// the <= len obligation from the >= 0 one.
func checkRegionSliceBound(w *flowWalker, env *absEnv, r *Reporter, pos token.Pos, key string, base, e ast.Expr, upper bool) {
	if e == nil {
		return
	}
	if !proveNonNeg(w, env, e) {
		r.report("region-bounds", pos,
			"slice bound of region %s not provably >= 0; guard the offset or derive it from a hydralint:offset-source value", key)
		return
	}
	if !upper {
		return // low >= 0 suffices; low <= high is covered by high <= len
	}
	av := w.eval(env, e)
	if av.origins != nil {
		return
	}
	if proveMax(w, env, base, e, 0) {
		return
	}
	r.report("region-bounds", pos,
		"slice bound of region %s not provably <= its length; guard against len(...) or derive the offset from a hydralint:offset-source value", key)
}

// checkOffsetSinkCall enforces provenance at one-sided verb calls: every
// parameter listed by the callee's //hydralint:offset-sink marker must be a
// non-negative constant or a non-negative offset-source-derived value.
func checkOffsetSinkCall(w *flowWalker, env *absEnv, r *Reporter, call *ast.CallExpr, m *progMarkers) {
	callee, _, ok := w.prog.resolveCallee(w.p, call)
	if !ok {
		return
	}
	params, marked := m.offsetSinkFuncs[callee.Obj.FullName()]
	if !marked {
		return
	}
	want := map[string]bool{}
	for _, name := range params {
		want[name] = true
	}
	for i, arg := range call.Args {
		name, ok := paramNameAt(callee, i)
		if !ok || (len(want) > 0 && !want[name]) {
			continue
		}
		if tv, hasType := w.p.Info.Types[arg]; !hasType || !isIntType(tv.Type) {
			continue
		}
		av := w.eval(env, arg)
		if c, isConst := av.isConst(); isConst {
			if c < 0 {
				r.report("region-bounds", arg.Pos(),
					"negative constant passed as region offset %q to %s", name, callee.Obj.Name())
			}
			continue
		}
		switch {
		case !proveNonNeg(w, env, arg):
			r.report("region-bounds", arg.Pos(),
				"region offset %q passed to %s is not provably >= 0", name, callee.Obj.Name())
		case av.origins == nil:
			r.report("region-bounds", arg.Pos(),
				"region offset %q passed to %s is not derived from a hydralint:offset-source value", name, callee.Obj.Name())
		}
	}
}

// paramNameAt returns the declared name of callee parameter i, mapping the
// variadic tail onto its single declared name.
func paramNameAt(callee *FuncInfo, i int) (string, bool) {
	idx := 0
	fields := callee.Decl.Type.Params.List
	for fi, f := range fields {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		_, variadic := f.Type.(*ast.Ellipsis)
		if variadic && fi == len(fields)-1 && i >= idx {
			if len(f.Names) > 0 {
				return f.Names[0].Name, true
			}
			return "", false
		}
		if i < idx+n {
			if len(f.Names) > 0 {
				return f.Names[i-idx].Name, true
			}
			return "", false
		}
		idx += n
	}
	return "", false
}

// checkMarkedStores enforces the producer side of offset-source and aligned
// markers: values stored into marked fields must uphold the declared facts.
func checkMarkedStores(w *flowWalker, env *absEnv, r *Reporter, as *ast.AssignStmt, m *progMarkers) {
	pairwise := len(as.Lhs) == len(as.Rhs)
	for i, lhs := range as.Lhs {
		key, ok := mixedWordID(w.p, lhs)
		if !ok {
			continue
		}
		isSource := m.offsetSourceKeys[key]
		alignN := m.alignedKeys[key]
		if !isSource && alignN <= 1 {
			continue
		}
		if !pairwise {
			r.report("region-bounds", lhs.Pos(),
				"%s is a marked offset field; a tuple assignment cannot be proven — assign it from a checked value", key)
			continue
		}
		rhs := as.Rhs[i]
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			if isSource && !proveNonNeg(w, env, rhs) {
				r.report("region-bounds", rhs.Pos(),
					"store to hydralint:offset-source %s is not provably >= 0; validate the offset before caching it", key)
			}
			if alignN > 1 && !w.eval(env, rhs).alignedTo(alignN) {
				r.report("region-bounds", rhs.Pos(),
					"store to %s does not provably keep it a multiple of %d (hydralint:aligned)", key, alignN)
			}
		case token.ADD_ASSIGN:
			if isSource && !proveNonNeg(w, env, rhs) {
				r.report("region-bounds", rhs.Pos(),
					"+= on hydralint:offset-source %s with a possibly negative delta", key)
			}
			if alignN > 1 && !w.eval(env, rhs).alignedTo(alignN) {
				r.report("region-bounds", rhs.Pos(),
					"+= on %s with a delta not provably a multiple of %d (hydralint:aligned)", key, alignN)
			}
		default:
			r.report("region-bounds", rhs.Pos(),
				"%s on marked offset field %s cannot be proven; use plain assignment from a checked value", strings.TrimSuffix(as.Tok.String(), "="), key)
		}
	}
}
