package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Check is one named rule. Run inspects a single package and reports
// findings through the Reporter, which applies suppression directives.
type Check struct {
	Name string
	Desc string
	Run  func(p *Package, r *Reporter)
}

// allChecks is the registry, in the order findings group in the output.
var allChecks = []Check{
	{
		Name: "clock-discipline",
		Desc: "no direct time.Now/Since/Sleep in internal/ data-plane code; use timing.Clock",
		Run:  runClockDiscipline,
	},
	{
		Name: "shard-exclusivity",
		Desc: "no go statements, mutexes, or channel sends on the shard hot path (§4.1.1)",
		Run:  runShardExclusivity,
	},
	{
		Name: "atomic-word",
		Desc: "values containing sync/atomic types must not be copied, ranged over, or aliased",
		Run:  runAtomicWord,
	},
	{
		Name: "hotpath-alloc",
		Desc: "functions marked hydralint:hotpath must not allocate",
		Run:  runHotpathAlloc,
	},
	{
		Name: "error-discipline",
		Desc: "no discarded errors in internal/ packages",
		Run:  runErrorDiscipline,
	},
	{
		Name: "lease-discipline",
		Desc: "every lock/lease acquire must be released on all paths (function-CFG dataflow)",
		Run:  runLeaseDiscipline,
	},
	{
		Name: "published-escape",
		Desc: "no pointer into an RDMA-registered region may escape to an un-leased reference",
		Run:  runPublishedEscape,
	},
}

func knownCheck(name string) bool {
	for _, c := range allChecks {
		if c.Name == name {
			return true
		}
	}
	return false
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	File  string
	Line  int
	Col   int
	Check string
	Msg   string
}

// Reporter collects diagnostics, filtering ones a `//hydralint:ignore`
// directive suppresses. A directive suppresses the named check(s) on its own
// line (trailing comment) and on the line directly below (comment above the
// offending statement). Multiple checks may be listed comma-separated.
type Reporter struct {
	fset *token.FileSet
	base string // paths are reported relative to this directory
	// suppressed maps file -> line -> set of check names ("" = current check
	// list key; names stored verbatim).
	suppressed map[string]map[int]map[string]bool
	diags      []Diagnostic
}

func newReporter(fset *token.FileSet, base string) *Reporter {
	return &Reporter{fset: fset, base: base, suppressed: map[string]map[int]map[string]bool{}}
}

// indexSuppressions scans a file's comments for hydralint:ignore directives.
func (r *Reporter) indexSuppressions(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if !strings.HasPrefix(text, "hydralint:ignore") {
				continue
			}
			rest := strings.TrimPrefix(text, "hydralint:ignore")
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue // malformed: no check named, suppresses nothing
			}
			pos := r.fset.Position(c.Pos())
			byLine := r.suppressed[pos.Filename]
			if byLine == nil {
				byLine = map[int]map[string]bool{}
				r.suppressed[pos.Filename] = byLine
			}
			for _, name := range strings.Split(fields[0], ",") {
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := byLine[line]
					if set == nil {
						set = map[string]bool{}
						byLine[line] = set
					}
					set[name] = true
				}
			}
		}
	}
}

func (r *Reporter) report(check string, pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	if byLine, ok := r.suppressed[p.Filename]; ok {
		if set, ok := byLine[p.Line]; ok && set[check] {
			return
		}
	}
	file := p.Filename
	if rel, err := filepath.Rel(r.base, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	r.diags = append(r.diags, Diagnostic{
		File:  file,
		Line:  p.Line,
		Col:   p.Column,
		Check: check,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// RunLint loads the packages matched by patterns (relative to dir), runs the
// selected checks (nil/empty = all), and returns findings sorted by position.
// With tests set, _test.go files are linted too (checks that only govern
// production code skip them individually via Package.isTestFile).
func RunLint(dir string, patterns []string, only []string, tests bool) ([]Diagnostic, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := load(abs, patterns, tests)
	if err != nil {
		return nil, err
	}

	selected := allChecks
	if len(only) > 0 {
		want := map[string]bool{}
		for _, n := range only {
			want[n] = true
		}
		selected = nil
		for _, c := range allChecks {
			if want[c.Name] {
				selected = append(selected, c)
			}
		}
	}

	var diags []Diagnostic
	for _, p := range pkgs {
		r := newReporter(p.Fset, abs)
		for _, f := range p.Files {
			r.indexSuppressions(f)
		}
		for _, c := range selected {
			c.Run(p, r)
		}
		diags = append(diags, r.diags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})
	return diags, nil
}
