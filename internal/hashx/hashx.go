// Package hashx provides the 64-bit key hashing used throughout hydradb.
//
// A single 64-bit hashcode per key drives three separate decisions, exactly
// as in the paper (§4, §4.1.3):
//
//   - consistent-hash routing of the key to a shard (high bits),
//   - the bucket index inside a shard's compact hash table (low bits),
//   - the 16-bit signature stored in a bucket slot to filter full-key
//     comparisons (middle bits).
//
// The mixer is a wyhash-style multiply-fold construction implemented with
// only stdlib arithmetic; it is fast, has good avalanche behaviour for the
// short keys the paper targets (16-byte keys), and is deterministic across
// runs so simulation results are reproducible.
package hashx

import "math/bits"

const (
	prime1 = 0xa0761d6478bd642f
	prime2 = 0xe7037ed1a0b428db
	prime3 = 0x8ebc6af09c88c6e3
	prime4 = 0x589965cc75374cc3
)

func mix(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

func load64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func load32(b []byte) uint64 {
	_ = b[3]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
}

// Hash returns the 64-bit hashcode of key.
//
// hydralint:hotpath
func Hash(key []byte) uint64 {
	seed := uint64(prime1)
	n := len(key)
	var a, b uint64
	switch {
	case n == 0:
		a, b = 0, 0
	case n < 4:
		a = uint64(key[0])<<16 | uint64(key[n>>1])<<8 | uint64(key[n-1])
		b = 0
	case n <= 8:
		a = load32(key)
		b = load32(key[n-4:])
	case n <= 16:
		a = load64(key)
		b = load64(key[n-8:])
	default:
		i := n
		p := key
		if i > 48 {
			s1, s2 := seed, seed
			for ; i > 48; i -= 48 {
				seed = mix(load64(p)^prime2, load64(p[8:])^seed)
				s1 = mix(load64(p[16:])^prime3, load64(p[24:])^s1)
				s2 = mix(load64(p[32:])^prime4, load64(p[40:])^s2)
				p = p[48:]
			}
			seed ^= s1 ^ s2
		}
		for ; i > 16; i -= 16 {
			seed = mix(load64(p)^prime2, load64(p[8:])^seed)
			p = p[16:]
		}
		a = load64(key[n-16:])
		b = load64(key[n-8:])
	}
	return mix(prime2^uint64(n), mix(a^prime3, b^seed))
}

// HashString is Hash for string keys without forcing an allocation at call
// sites that already hold a string.
func HashString(key string) uint64 {
	// Strings are immutable; converting via []byte(key) would copy. For the
	// short keys hydradb handles the copy cost is negligible and keeps the
	// implementation allocation-transparent to escape analysis in most cases.
	buf := make([]byte, 0, 32)
	buf = append(buf, key...)
	return Hash(buf)
}

// Hash64 mixes a raw 64-bit value; used for integer-keyed tables such as the
// shared remote-pointer cache.
func Hash64(x uint64) uint64 {
	return mix(x^prime2, prime3)
}

// Signature extracts the 16-bit slot signature from a hashcode. It uses bits
// not used for bucket indexing (tables are sized far below 2^48 buckets) so
// signature and index stay independent.
//
// hydralint:hotpath
func Signature(h uint64) uint16 {
	s := uint16(h >> 48)
	if s == 0 {
		// Zero is reserved as the "empty slot" marker in the table.
		s = 1
	}
	return s
}

// BucketIndex maps a hashcode onto nBuckets (a power of two).
//
// hydralint:hotpath
func BucketIndex(h uint64, nBuckets uint64) uint64 {
	return h & (nBuckets - 1)
}
