package ycsb

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"testing"

	"hydradb/internal/testutil"
)

func TestSpecValidation(t *testing.T) {
	s := StandardSpec(1000, 100, 90, Zipfian, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.ReadProportion = 0.5 // sums to 0.6
	if err := bad.Validate(); err == nil {
		t.Fatal("bad proportions accepted")
	}
	bad = s
	bad.Records = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero records accepted")
	}
	bad = s
	bad.KeyLen = 4
	if err := bad.Validate(); err == nil {
		t.Fatal("tiny key accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := StandardSpec(1000, 5000, 50, Zipfian, 42)
	w1, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	w2 := testutil.Must1(Generate(spec))
	for i := range w1.Requests {
		if w1.Requests[i] != w2.Requests[i] {
			t.Fatalf("request %d differs across runs", i)
		}
	}
}

func TestMixProportions(t *testing.T) {
	spec := StandardSpec(10000, 100000, 90, Uniform, 7)
	w := testutil.Must1(Generate(spec))
	reads := 0
	for _, r := range w.Requests {
		if r.Op == OpRead {
			reads++
		}
	}
	frac := float64(reads) / float64(len(w.Requests))
	if math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("read fraction %.3f, want 0.90", frac)
	}
}

func TestInsertWorkloadGrowsKeyspace(t *testing.T) {
	spec := Spec{
		Records: 100, Operations: 1000,
		InsertProportion: 1.0,
		Dist:             Uniform, KeyLen: 16, ValueLen: 32, Seed: 3,
	}
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i, r := range w.Requests {
		if r.Op != OpInsert {
			t.Fatalf("request %d not an insert", i)
		}
		if r.KeyIdx < 100 || seen[r.KeyIdx] {
			t.Fatalf("insert %d reuses key %d", i, r.KeyIdx)
		}
		seen[r.KeyIdx] = true
	}
}

func TestKeyFormat(t *testing.T) {
	spec := StandardSpec(100, 10, 100, Uniform, 1)
	w := testutil.Must1(Generate(spec))
	k := w.Key(42)
	if len(k) != 16 || string(k[:4]) != "user" {
		t.Fatalf("key %q", k)
	}
	if string(k) != "user000000000042" {
		t.Fatalf("key %q", k)
	}
	// KeyInto matches Key without allocating.
	dst := make([]byte, 16)
	if got := w.KeyInto(dst, 42); !bytes.Equal(got, k) {
		t.Fatalf("KeyInto %q != Key %q", got, k)
	}
	if got := w.KeyInto(dst, 999999); string(got) != "user000000999999" {
		t.Fatalf("KeyInto big: %q", got)
	}
	if n := testing.AllocsPerRun(100, func() { w.KeyInto(dst, 123456) }); n > 0 {
		t.Fatalf("KeyInto allocates %.1f/op", n)
	}
}

func TestZipfianSkew(t *testing.T) {
	const n = 10000
	z := newZipf(n)
	rng := rand.New(rand.NewSource(1))
	counts := map[int64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.next(rng)
		if v < 0 || v >= n {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank-0 item should absorb ~1/zeta(n) of draws (~7% for n=10k).
	if frac := float64(counts[0]) / draws; frac < 0.04 || frac > 0.15 {
		t.Fatalf("hottest item fraction %.3f implausible for zipf(0.99)", frac)
	}
	// Top-1% of items should cover the majority of draws.
	var all []int
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	top := 0
	for i := 0; i < len(all) && i < n/100; i++ {
		top += all[i]
	}
	if frac := float64(top) / draws; frac < 0.5 {
		t.Fatalf("top-1%% covers only %.2f of draws", frac)
	}
}

func TestUniformSpread(t *testing.T) {
	spec := StandardSpec(1000, 100000, 100, Uniform, 5)
	w := testutil.Must1(Generate(spec))
	counts := make([]int, 1000)
	for _, r := range w.Requests {
		counts[r.KeyIdx]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform: expected 100 per key; a max above 200 is wildly off.
	if max > 200 {
		t.Fatalf("uniform max count %d", max)
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	const n = 10000
	specZ := StandardSpec(n, 50000, 100, Zipfian, 9)
	specS := StandardSpec(n, 50000, 100, ScrambledZipfian, 9)
	wz := testutil.Must1(Generate(specZ))
	ws := testutil.Must1(Generate(specS))
	hotZ, hotS := int64(-1), int64(-1)
	cz, cs := map[int64]int{}, map[int64]int{}
	for i := range wz.Requests {
		cz[wz.Requests[i].KeyIdx]++
		cs[ws.Requests[i].KeyIdx]++
	}
	bz, bs := 0, 0
	for k, c := range cz {
		if c > bz {
			bz, hotZ = c, k
		}
	}
	for k, c := range cs {
		if c > bs {
			bs, hotS = c, k
		}
	}
	// Plain zipfian's hottest key is rank 0; scrambled moves it elsewhere
	// while preserving skew.
	if hotZ != 0 {
		t.Fatalf("plain zipfian hottest = %d", hotZ)
	}
	if hotS == 0 {
		t.Fatal("scrambled zipfian did not move the hot key")
	}
	if bs < bz/2 {
		t.Fatalf("scrambling destroyed skew: %d vs %d", bs, bz)
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	spec := Spec{
		Records: 1000, Operations: 50000,
		ReadProportion: 0.95, InsertProportion: 0.05,
		Dist: Latest, KeyLen: 16, ValueLen: 32, Seed: 11,
	}
	w, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	recent, old := 0, 0
	for _, r := range w.Requests {
		if r.Op != OpRead {
			continue
		}
		if r.KeyIdx > 900 {
			recent++
		} else if r.KeyIdx < 500 {
			old++
		}
	}
	if recent < old {
		t.Fatalf("latest distribution not recency-skewed: recent=%d old=%d", recent, old)
	}
}

func TestDistributionNames(t *testing.T) {
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" {
		t.Fatal("names wrong")
	}
	s := StandardSpec(10, 10, 90, Zipfian, 1)
	if s.Name() != "90%GET/10%UPD zipfian" {
		t.Fatalf("spec name %q", s.Name())
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := newZipf(1 << 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		z.next(rng)
	}
}

func BenchmarkGenerate1M(b *testing.B) {
	spec := StandardSpec(1<<20, 1<<20, 90, ScrambledZipfian, 1)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// goldenHash collapses a workload's request stream (and the rendered form
// of a few keys) into one FNV-1a digest.
func goldenHash(w *Workload) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	for _, r := range w.Requests {
		buf[0] = byte(r.Op)
		binary.LittleEndian.PutUint64(buf[1:], uint64(r.KeyIdx))
		//hydralint:ignore error-discipline hash.Hash Write never fails
		h.Write(buf[:])
	}
	for _, r := range w.Requests[:16] {
		//hydralint:ignore error-discipline hash.Hash Write never fails
		h.Write(w.Key(r.KeyIdx))
	}
	//hydralint:ignore error-discipline hash.Hash Write never fails
	h.Write(w.Value())
	return h.Sum64()
}

// TestGenerateGolden pins the generator's exact output across code changes,
// not just within one binary: chaos schedules and EXPERIMENTS.md numbers
// reference (spec, seed) pairs, so a silent change to the request stream
// would break replayability end-to-end. If this fails because the generator
// was changed ON PURPOSE, update the constants and note the break in
// EXPERIMENTS.md.
func TestGenerateGolden(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want uint64
	}{
		{name: "zipfian-50-50", spec: StandardSpec(1000, 5000, 50, Zipfian, 42), want: 0xbd35860b11af2608},
		{name: "uniform-95-5", spec: StandardSpec(500, 2000, 95, Uniform, 7), want: 0x37c2fcf856490430},
		{name: "latest-insert-heavy", spec: StandardSpec(200, 1000, 30, Latest, 99), want: 0x2066f06ce0878dce},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := testutil.Must1(Generate(tc.spec))
			if got := goldenHash(w); got != tc.want {
				t.Fatalf("golden hash = %#x, want %#x (generator output changed)", got, tc.want)
			}
		})
	}
}
