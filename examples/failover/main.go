// Failover example — the paper's §5 resilience story end to end: a cluster
// with RDMA Logging replication takes writes, a primary shard is killed
// abruptly, the SWAT leader observes the liveness change through the
// coordination service and promotes the most caught-up secondary, and every
// acknowledged write remains readable under the new routing epoch.
package main

import (
	"fmt"
	"log"
	"time"

	"hydradb"
)

func main() {
	opts := hydradb.DefaultOptions()
	opts.ServerMachines = 3
	opts.ShardsPerMachine = 2
	opts.Replicas = 1 // each primary logs to one secondary on another machine
	opts.ArenaBytesPerShard = 16 << 20
	opts.MaxItemsPerShard = 1 << 16
	db, err := hydradb.Start(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println("started:", db, "epoch", db.Cluster().Epoch())

	c := db.NewClient()
	const n = 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		v := []byte(fmt.Sprintf("value-%d", i))
		if err := c.Put(k, v); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("acknowledged %d writes (each RDMA-logged to a secondary before the client saw OK)\n", n)

	// Kill the busiest primary.
	victim := db.ShardIDs()[0]
	best := -1
	for _, id := range db.ShardIDs() {
		if l := db.Cluster().Shard(id).Store().Len(); l > best {
			best, victim = l, id
		}
	}
	fmt.Printf("killing shard %d (holding %d keys)...\n", victim, best)
	t0 := time.Now()
	if err := db.KillShard(victim); err != nil {
		log.Fatal(err)
	}

	// SWAT reacts: ephemeral znode vanished -> leader promotes.
	for db.Cluster().Promotions.Load() == 0 {
		if time.Since(t0) > 10*time.Second {
			log.Fatal("promotion never happened")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("SWAT promoted a secondary in %v; new epoch %d\n",
		time.Since(t0).Round(time.Millisecond), db.Cluster().Epoch())

	// Every acknowledged write must survive. The client transparently
	// reroutes (stale-epoch responses / request timeouts trigger a routing
	// refresh) and its stale remote pointers fail validation and fall back.
	missing := 0
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%08d", i))
		v, err := c.Get(k)
		if err != nil || string(v) != fmt.Sprintf("value-%d", i) {
			missing++
		}
	}
	if missing > 0 {
		log.Fatalf("%d acknowledged writes lost", missing)
	}
	fmt.Printf("verified: all %d acknowledged writes survived the failover\n", n)

	// And the cluster keeps accepting writes.
	if err := c.Put([]byte("post-failover"), []byte("onward")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-failover write accepted; reroutes used:",
		c.Counters().Snapshot().RoutingRetries)
}
