//go:build !hydradebug

package invariant

// noopDone is returned by the disabled Spawned; a single shared func keeps
// the production spawn path allocation-free.
var noopDone = func() {}

// Spawned is a no-op without -tags hydradebug.
func Spawned(string) (done func()) { return noopDone }

// LiveSpawns is a no-op without -tags hydradebug.
func LiveSpawns(string) []string { return nil }

// AssertDrained is a no-op without -tags hydradebug.
func AssertDrained(string) {}
