// Command ycsbgen pre-generates YCSB workload files, the practice the paper
// adopts because generation is CPU-intensive ("all the workloads are
// pre-generated", §6). The files replay identically across tools and runs.
//
// Examples:
//
//	ycsbgen -records 1000000 -ops 10000000 -read 90 -dist zipfian -out wl-b.hywl
//	ycsbgen -inspect wl-b.hywl
package main

import (
	"flag"
	"fmt"
	"os"

	"hydradb/internal/ycsb"
)

func main() {
	var (
		records = flag.Int64("records", 1_000_000, "records in the keyspace")
		ops     = flag.Int("ops", 10_000_000, "operations to generate")
		readPct = flag.Int("read", 90, "GET percentage")
		dist    = flag.String("dist", "zipfian", "zipfian | uniform | scrambled | latest")
		seed    = flag.Int64("seed", 20150415, "generator seed")
		out     = flag.String("out", "", "output file (required unless -inspect)")
		inspect = flag.String("inspect", "", "print the header and op mix of an existing file")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w, err := ycsb.Load(f)
		if err != nil {
			fatal(err)
		}
		var reads, updates, inserts int
		for _, r := range w.Requests {
			switch r.Op {
			case ycsb.OpRead:
				reads++
			case ycsb.OpUpdate:
				updates++
			default:
				inserts++
			}
		}
		fmt.Printf("spec:     %s over %d records (seed %d)\n", w.Spec.Name(), w.Spec.Records, w.Spec.Seed)
		fmt.Printf("requests: %d (reads %d, updates %d, inserts %d)\n",
			len(w.Requests), reads, updates, inserts)
		return
	}

	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}
	var d ycsb.Distribution
	switch *dist {
	case "zipfian":
		d = ycsb.Zipfian
	case "uniform":
		d = ycsb.Uniform
	case "scrambled":
		d = ycsb.ScrambledZipfian
	case "latest":
		d = ycsb.Latest
	default:
		fatal(fmt.Errorf("unknown distribution %q", *dist))
	}
	w, err := ycsb.Generate(ycsb.StandardSpec(*records, *ops, *readPct, d, *seed))
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := w.Save(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("wrote %s: %d requests, %d bytes\n", *out, len(w.Requests), st.Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ycsbgen:", err)
	os.Exit(1)
}
