// Package consistent implements the consistent-hashing ring HydraDB clients
// use to locate the shard owning a key (paper §4, citing Karger et al.).
//
// Each shard is projected onto the ring at a configurable number of virtual
// points; a key is owned by the first shard clockwise from its 64-bit
// hashcode. Virtual nodes smooth the load distribution and let the SWAT
// reconfigure routing incrementally when shards join or fail — only the keys
// in the moved arcs change owners.
//
// The ring is immutable after Build; routing tables are replaced wholesale
// under a new epoch (see internal/cluster), so no locking is needed on the
// lookup path.
package consistent

import (
	"fmt"
	"sort"

	"hydradb/internal/hashx"
)

// DefaultVNodes is the per-shard virtual-point count. 128 keeps the max/mean
// load ratio under ~1.15 for the cluster sizes the paper evaluates.
const DefaultVNodes = 128

type point struct {
	hash  uint64
	shard uint32
}

// Ring maps 64-bit key hashcodes to shard IDs.
type Ring struct {
	points []point
	shards []uint32
	vnodes int
}

// Build constructs a ring over the given shard IDs with vnodes virtual
// points each (0 selects DefaultVNodes). Shard IDs may be arbitrary but must
// be unique.
func Build(shards []uint32, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("consistent: no shards")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[uint32]bool, len(shards))
	r := &Ring{
		points: make([]point, 0, len(shards)*vnodes),
		shards: append([]uint32(nil), shards...),
		vnodes: vnodes,
	}
	for _, s := range shards {
		if seen[s] {
			return nil, fmt.Errorf("consistent: duplicate shard id %d", s)
		}
		seen[s] = true
		for v := 0; v < vnodes; v++ {
			h := hashx.Hash64(uint64(s)<<32 | uint64(v))
			// Perturb with a second mix to decorrelate successive vnodes.
			h = hashx.Hash64(h ^ uint64(v)*0x9e3779b97f4a7c15)
			r.points = append(r.points, point{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Owner returns the shard owning hashcode h.
func (r *Ring) Owner(h uint64) uint32 {
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return pts[i].shard
}

// OwnerOfKey routes a key.
func (r *Ring) OwnerOfKey(key []byte) uint32 {
	return r.Owner(hashx.Hash(key))
}

// Shards returns the shard IDs in the ring.
func (r *Ring) Shards() []uint32 { return append([]uint32(nil), r.shards...) }

// Size reports the number of shards.
func (r *Ring) Size() int { return len(r.shards) }

// MovedArcs reports the fraction of the hash space whose owner differs
// between r and other — used by tests to validate the consistent-hashing
// minimal-disruption property and by SWAT to estimate migration volume.
func (r *Ring) MovedArcs(other *Ring, samples int) float64 {
	if samples <= 0 {
		samples = 4096
	}
	moved := 0
	for i := 0; i < samples; i++ {
		h := hashx.Hash64(uint64(i) * 0x9e3779b97f4a7c15)
		if r.Owner(h) != other.Owner(h) {
			moved++
		}
	}
	return float64(moved) / float64(samples)
}
