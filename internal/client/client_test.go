package client

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"hydradb/internal/consistent"
	"hydradb/internal/kv"
	"hydradb/internal/rdma"
	"hydradb/internal/shard"
	"hydradb/internal/testutil"
	"hydradb/internal/timing"
)

// liveEnv is a one-shard, live-mode mini cluster.
type liveEnv struct {
	fabric *rdma.Fabric
	clk    *timing.ManualClock
	shard  *shard.Shard
	cliNIC *rdma.NIC
	table  *RouteTable
	stopFn func()
}

func newLiveEnv(t testing.TB, sendRecv bool) *liveEnv {
	t.Helper()
	clk := timing.NewManualClock(1e9)
	f := rdma.NewFabric(rdma.Config{})
	srvNIC := f.NewNIC("server")
	cliNIC := f.NewNIC("clients")
	sh := shard.New(shard.Config{
		ID:  1,
		NIC: srvNIC,
		Store: kv.Config{
			ArenaBytes: 4 << 20,
			MaxItems:   8192,
			Clock:      clk,
		},
	})
	ring, err := consistent.Build([]uint32{1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	env := &liveEnv{
		fabric: f, clk: clk, shard: sh, cliNIC: cliNIC,
		table: &RouteTable{Epoch: 0, Ring: ring, Endpoints: map[uint32]*shard.Endpoint{}},
	}
	env.table.Endpoints[1] = sh.Connect(cliNIC, sendRecv)
	go sh.Run()
	env.stopFn = sh.Stop
	t.Cleanup(env.stopFn)
	return env
}

func (e *liveEnv) newClient(t testing.TB, opts Options) *Client {
	t.Helper()
	opts.Clock = e.clk
	tbl := *e.table
	tbl.Endpoints = map[uint32]*shard.Endpoint{}
	for id := range e.table.Endpoints {
		// Each client gets its own connection, as in the paper's
		// per-Shard-Client request buffers.
		tbl.Endpoints[id] = e.shard.Connect(e.cliNIC, e.table.Endpoints[id].SendRecv)
	}
	return New(&tbl, opts)
}

func TestPutGetDeleteMessaging(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: false})

	if _, err := c.Get([]byte("missing")); err != ErrNotFound {
		t.Fatalf("get missing: %v", err)
	}
	if err := c.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("alpha"))
	if err != nil || string(v) != "one" {
		t.Fatalf("get: %q %v", v, err)
	}
	if err := c.Put([]byte("alpha"), []byte("two")); err != nil {
		t.Fatal(err)
	}
	v = testutil.Must1(c.Get([]byte("alpha")))
	if string(v) != "two" {
		t.Fatalf("after update: %q", v)
	}
	if err := c.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete([]byte("alpha")); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := c.Get([]byte("alpha")); err != ErrNotFound {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestRDMAReadHitPath(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: true})

	testutil.Must(c.Put([]byte("k"), []byte("v")))
	// Put cached the pointer: the first GET should already go one-sided.
	v, err := c.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("get: %q %v", v, err)
	}
	snap := c.Counters().Snapshot()
	if snap.RDMAReadHits != 1 {
		t.Fatalf("rdma hits = %d, want 1", snap.RDMAReadHits)
	}
	// Repeat: all hits, no server messages.
	handledBefore := env.shard.Handled.Load()
	for i := 0; i < 50; i++ {
		if v, err := c.Get([]byte("k")); err != nil || string(v) != "v" {
			t.Fatalf("iter %d: %q %v", i, v, err)
		}
	}
	if got := env.shard.Handled.Load() - handledBefore; got != 0 {
		t.Fatalf("server handled %d messages during one-sided GETs", got)
	}
	snap = c.Counters().Snapshot()
	if snap.RDMAReadHits != 51 {
		t.Fatalf("rdma hits = %d, want 51", snap.RDMAReadHits)
	}
}

func TestStaleReadAfterRemoteUpdate(t *testing.T) {
	env := newLiveEnv(t, false)
	a := env.newClient(t, Options{UseRDMARead: true})
	b := env.newClient(t, Options{UseRDMARead: true})

	testutil.Must(a.Put([]byte("k"), []byte("v1")))
	if v := testutil.Must1(a.Get([]byte("k"))); string(v) != "v1" {
		t.Fatal("warmup failed")
	}
	// B updates out-of-place; A's cached pointer now points at a dead item.
	if err := b.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, err := a.Get([]byte("k"))
	if err != nil || string(v) != "v2" {
		t.Fatalf("stale fallback: %q %v", v, err)
	}
	snap := a.Counters().Snapshot()
	if snap.RDMAReadStale != 1 {
		t.Fatalf("invalid hits = %d, want 1", snap.RDMAReadStale)
	}
	// A's next GET uses the refreshed pointer one-sided again.
	hits := snap.RDMAReadHits
	if v := testutil.Must1(a.Get([]byte("k"))); string(v) != "v2" {
		t.Fatal("refreshed get failed")
	}
	if got := a.Counters().Snapshot().RDMAReadHits; got != hits+1 {
		t.Fatalf("hits after refresh = %d, want %d", got, hits+1)
	}
}

func TestGuardianAfterDelete(t *testing.T) {
	env := newLiveEnv(t, false)
	a := env.newClient(t, Options{UseRDMARead: true})
	b := env.newClient(t, Options{UseRDMARead: true})

	testutil.Must(a.Put([]byte("k"), []byte("v")))
	testutil.Must1(a.Get([]byte("k")))
	if err := b.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get([]byte("k")); err != ErrNotFound {
		t.Fatalf("get after remote delete: %v", err)
	}
	if a.Counters().Snapshot().RDMAReadStale == 0 {
		t.Fatal("deletion did not register as invalid hit")
	}
}

func TestLeaseExpiryForcesMessagePath(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: true})
	testutil.Must(c.Put([]byte("k"), []byte("v")))
	testutil.Must1(c.Get([]byte("k")))
	// Let the lease lapse.
	env.clk.Advance(200e9)
	v, err := c.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("post-expiry get: %q %v", v, err)
	}
	snap := c.Counters().Snapshot()
	if snap.RDMAReadStale == 0 {
		t.Fatal("expired lease should count as invalid hit")
	}
}

func TestSharedCacheAcrossClients(t *testing.T) {
	env := newLiveEnv(t, false)
	shared := NewSharedCache(256)
	a := env.newClient(t, Options{UseRDMARead: true, Cache: shared})
	b := env.newClient(t, Options{UseRDMARead: true, Cache: shared})

	testutil.Must(a.Put([]byte("hot"), []byte("v")))
	// B never touched the key but hits one-sided via the shared cache
	// (§4.2.4: sharing accelerates warm-up).
	v, err := b.Get([]byte("hot"))
	if err != nil || string(v) != "v" {
		t.Fatalf("b get: %q %v", v, err)
	}
	if b.Counters().Snapshot().RDMAReadHits != 1 {
		t.Fatal("shared pointer not used")
	}
	// B updates; the shared entry is refreshed, so A does NOT pay an
	// invalid read (the §4.2.4 cascading-invalidation scenario).
	testutil.Must(b.Put([]byte("hot"), []byte("v2")))
	if v := testutil.Must1(a.Get([]byte("hot"))); string(v) != "v2" {
		t.Fatal("a missed the refresh")
	}
	if a.Counters().Snapshot().RDMAReadStale != 0 {
		t.Fatal("shared cache failed to prevent the stale cascade")
	}
}

func TestSendRecvTransport(t *testing.T) {
	env := newLiveEnv(t, true)
	c := env.newClient(t, Options{UseRDMARead: false})
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("key%02d", i))
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get %s: %q %v", k, v, err)
		}
	}
}

func TestEpochReroute(t *testing.T) {
	env := newLiveEnv(t, false)
	refreshed := false
	c := env.newClient(t, Options{
		UseRDMARead: false,
		Refresh: func() *RouteTable {
			refreshed = true
			tbl := *env.table
			tbl.Epoch = 7
			tbl.Endpoints = map[uint32]*shard.Endpoint{1: env.shard.Connect(env.cliNIC, false)}
			return &tbl
		},
	})
	env.shard.SetEpoch(7) // cluster reconfigured; client's epoch 0 is stale
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatal("refresh callback not invoked")
	}
	if c.Counters().Snapshot().RoutingRetries == 0 {
		t.Fatal("routing retry not counted")
	}
	if v, err := c.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("get after reroute: %q %v", v, err)
	}
}

func TestEpochRerouteWithoutRefreshFails(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: false})
	env.shard.SetEpoch(3)
	if err := c.Put([]byte("k"), []byte("v")); err != ErrRetries {
		t.Fatalf("want ErrRetries, got %v", err)
	}
}

func TestRenewLease(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: true})
	testutil.Must(c.Put([]byte("k"), []byte("v")))
	for i := 0; i < 5; i++ {
		testutil.Must1(c.Get([]byte("k")))
	}
	e, ok := c.Cache().Get("k")
	if !ok {
		t.Fatal("no cached pointer")
	}
	before := e.LeaseExp
	env.clk.Advance(1500e6) // move close to expiry
	n := c.RenewPopular(2, 64e9)
	if n != 1 {
		t.Fatalf("renewed %d keys, want 1", n)
	}
	e2, _ := c.Cache().Get("k")
	if e2.LeaseExp <= before {
		t.Fatalf("lease not extended: %d <= %d", e2.LeaseExp, before)
	}
	// Renewal of a deleted key fails and evicts the pointer.
	testutil.Must(c.Delete([]byte("k")))
	if err := c.Renew([]byte("k")); err != ErrNotFound {
		t.Fatalf("renew deleted: %v", err)
	}
	if _, ok := c.Cache().Get("k"); ok {
		t.Fatal("pointer survived failed renewal")
	}
}

func TestLargeValuesThroughMailbox(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: true})
	val := bytes.Repeat([]byte("x"), 32<<10) // 32KB fits the 64KB mailbox
	if err := c.Put([]byte("big"), val); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get([]byte("big"))
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("big get: len=%d err=%v", len(got), err)
	}
}

func TestManyKeysAndValues(t *testing.T) {
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: true})
	const n = 500
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%016d", i))
		v := []byte(fmt.Sprintf("val-%032d", i))
		if err := c.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("user%016d", i))
		v, err := c.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val-%032d", i) {
			t.Fatalf("key %d: %q %v", i, v, err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	env := newLiveEnv(t, false)
	shared := NewSharedCache(1024)
	const workers = 4
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		c := env.newClient(t, Options{UseRDMARead: true, Cache: shared})
		go func(w int, c *Client) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := []byte(fmt.Sprintf("key%03d", (w*37+i)%100))
				switch i % 3 {
				case 0:
					if err := c.Put(k, []byte(fmt.Sprintf("v%d-%d", w, i))); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				default:
					if _, err := c.Get(k); err != nil && err != ErrNotFound {
						t.Errorf("get: %v", err)
						return
					}
				}
			}
		}(w, c)
	}
	wg.Wait()
}

func TestPipelinedShardServesRequests(t *testing.T) {
	clk := timing.NewManualClock(1e9)
	f := rdma.NewFabric(rdma.Config{})
	srvNIC := f.NewNIC("server")
	cliNIC := f.NewNIC("clients")
	sh := shard.New(shard.Config{
		ID:    1,
		NIC:   srvNIC,
		Store: kv.Config{ArenaBytes: 1 << 20, MaxItems: 2048, Clock: clk},
	})
	pipe := shard.NewPipelined(sh, 2, 2)
	go pipe.Run()
	defer pipe.Stop()

	ring := testutil.Must1(consistent.Build([]uint32{1}, 16))
	table := &RouteTable{Ring: ring, Endpoints: map[uint32]*shard.Endpoint{
		1: sh.Connect(cliNIC, false),
	}}
	c := New(table, Options{Clock: clk, UseRDMARead: false})
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("key%02d", i))
		if err := c.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("get: %q %v", v, err)
		}
	}
}

func TestOpGetCountsAndHitAnalysis(t *testing.T) {
	// The Fig. 11 accounting: hits + invalid hits + misses == GETs.
	env := newLiveEnv(t, false)
	c := env.newClient(t, Options{UseRDMARead: true})
	for i := 0; i < 10; i++ {
		testutil.Must(c.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")))
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			testutil.Must1(c.Get([]byte(fmt.Sprintf("k%d", i))))
		}
	}
	testutil.Must(c.Put([]byte("k0"), []byte("v2"))) // refreshes own pointer
	testutil.Must1(c.Get([]byte("k0")))
	snap := c.Counters().Snapshot()
	if snap.Gets != 31 {
		t.Fatalf("gets = %d", snap.Gets)
	}
	if snap.RDMAReadHits+snap.RDMAReadStale+snap.PointerMisses != snap.Gets {
		t.Fatalf("hit analysis does not add up: %+v", snap)
	}
}
