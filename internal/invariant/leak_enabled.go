//go:build hydradebug

package invariant

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Goroutine-leak sanitizer: the runtime counterpart of hydralint's
// goroutine-lifecycle pass. Long-running goroutines register a label on
// entry and deregister on exit; a stop path then proves itself by calling
// AssertDrained after its join. The linter proves a stop path *exists*; this
// registry proves the path actually *ran* on this execution — together they
// close the gap between "provable" and "proven".
//
// Labels are instance-scoped (they embed the owning struct's pointer), so a
// component asserts only its own goroutines and concurrent clusters in one
// test process never trip each other.

var spawnReg struct {
	mu   sync.Mutex
	next uint64
	live map[uint64]string
}

// Spawned registers the calling goroutine under label and returns its
// deregistration. Call it first thing in the goroutine body and defer the
// returned func AFTER any done-channel close defer, so deregistration
// happens-before the close that a joining Stop waits on:
//
//	defer close(s.stopped)
//	done := invariant.Spawned(fmt.Sprintf("shard/%p/run", s))
//	defer done()
func Spawned(label string) (done func()) {
	spawnReg.mu.Lock()
	defer spawnReg.mu.Unlock()
	if spawnReg.live == nil {
		spawnReg.live = make(map[uint64]string)
	}
	id := spawnReg.next
	spawnReg.next++
	spawnReg.live[id] = label
	return func() {
		spawnReg.mu.Lock()
		delete(spawnReg.live, id)
		spawnReg.mu.Unlock()
	}
}

// LiveSpawns returns the labels of registered goroutines whose label starts
// with prefix ("" = all), sorted.
func LiveSpawns(prefix string) []string {
	spawnReg.mu.Lock()
	defer spawnReg.mu.Unlock()
	var out []string
	for _, label := range spawnReg.live {
		if strings.HasPrefix(label, prefix) {
			out = append(out, label)
		}
	}
	sort.Strings(out)
	return out
}

// AssertDrained panics when any registered goroutine under prefix is still
// live. Call it after the join a stop path performs — the channel receive or
// WaitGroup wait that orders the goroutine's deregistration before this
// check. Calling it without such a join is a race by construction.
func AssertDrained(prefix string) {
	if live := LiveSpawns(prefix); len(live) > 0 {
		panic(fmt.Sprintf("invariant: %d goroutine(s) leaked past their stop path: %s",
			len(live), strings.Join(live, ", ")))
	}
}
