package modelcheck

import (
	"fmt"
	"strings"

	"hydradb/internal/hashtable"
	"hydradb/internal/kv"
	"hydradb/internal/lease"
	"hydradb/internal/message"
	"hydradb/internal/protocolspec"
	"hydradb/internal/replication"
)

// Specs returns every declared publication-protocol spec, in the order
// their models appear in footprint.go (a model fed by several specs —
// readerplane — lists them consecutively, primary first). hydralint
// parses the same Spec literals statically; this runtime view exists so
// the footprints can be *generated* from the specs and diffed against
// the hand-written table, closing the lint <-> model-checker loop.
func Specs() []protocolspec.Spec {
	return []protocolspec.Spec{
		kv.GuardianSpec,
		lease.RenewalSpec,
		message.RingSpec,
		replication.ReadySpec,
		kv.ReadPlaneSpec,
		hashtable.RootSpec,
	}
}

// GeneratedFootprints derives each model's Footprint from the specs:
// packages, Footprint-marked words, and SchedTags accumulate in
// first-seen order across the specs feeding one model.
// TestGeneratedFootprintsMatchHandWritten and `hydramc -footprints`
// require the result to match footprint.go byte-for-byte under
// RenderFootprint, so neither table can drift from the other.
func GeneratedFootprints() []Footprint {
	var order []string
	byModel := map[string]*Footprint{}
	for _, s := range Specs() {
		if s.Model == "" {
			continue
		}
		fp := byModel[s.Model]
		if fp == nil {
			// Built field-by-field, not as a composite literal: hydralint
			// statically parses every Footprint literal in this package as a
			// declaration, and this one's fields are runtime values.
			fp = new(Footprint)
			fp.Model = s.Model
			fp.Packages, fp.AtomicWords, fp.SchedTags = []string{}, []string{}, []string{}
			byModel[s.Model] = fp
			order = append(order, s.Model)
		}
		for _, pkg := range s.Packages {
			appendUnique(&fp.Packages, pkg)
		}
		for _, w := range s.Words {
			if w.Footprint {
				appendUnique(&fp.AtomicWords, w.Name)
			}
		}
		for _, t := range s.SchedTags {
			appendUnique(&fp.SchedTags, t)
		}
	}
	out := make([]Footprint, 0, len(order))
	for _, m := range order {
		out = append(out, *byModel[m])
	}
	return out
}

func appendUnique(dst *[]string, s string) {
	for _, have := range *dst {
		if have == s {
			return
		}
	}
	*dst = append(*dst, s)
}

// RenderFootprint is the canonical one-line rendering the generated/
// hand-written diff compares byte-for-byte. nil and empty slices render
// identically, so only real content differences fail the diff.
func RenderFootprint(fp Footprint) string {
	return fmt.Sprintf("model=%s packages=[%s] words=[%s] tags=[%s]",
		fp.Model,
		strings.Join(fp.Packages, " "),
		strings.Join(fp.AtomicWords, " "),
		strings.Join(fp.SchedTags, " "))
}

// SchedSkeleton renders the invariant.SchedPoint hook skeleton a model
// implementation is expected to interleave on, one call per generated
// SchedTag. `hydramc -footprints` prints it next to each footprint so a
// new model can be stubbed from its spec.
func SchedSkeleton(fp Footprint) []string {
	out := make([]string, 0, len(fp.SchedTags))
	for _, tag := range fp.SchedTags {
		out = append(out, fmt.Sprintf("invariant.SchedPoint(%q)", tag))
	}
	return out
}
