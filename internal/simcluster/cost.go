// Package simcluster models a HydraDB testbed in virtual time: machines
// with finite NICs, single-threaded shard CPUs, clients, replication and
// the three Figure-9 baseline architectures. Actors execute the real
// hydradb data structures (kv stores, guardians, leases, pointer caches) so
// workload-dependent effects are computed, not assumed; only per-operation
// costs are parameters, grounded in the paper's testbed numbers (§6) and
// this repo's live-mode microbenchmarks.
package simcluster

// CostModel parameterizes the virtual testbed. All values are nanoseconds
// unless noted. Defaults approximate the paper's hardware: 40 Gbps
// ConnectX-3 InfiniBand (1–3 µs RDMA round trips), IPoIB for the TCP
// baselines (~100 µs request latency under load), 2.6 GHz Xeon cores.
type CostModel struct {
	// WireNs is one-way propagation + switch latency.
	WireNs int64
	// NICOpNs is NIC service per posted/received operation; 1e9/NICOpNs is
	// the device's message-rate ceiling (§6.3 saturation).
	NICOpNs int64
	// NICByteNs is per-byte serialization at 40 Gbps (~0.2 ns/B).
	NICByteNs float64
	// QPThreshold/QPExtraNs: each NIC op pays (qps-threshold)*extra when
	// the adaptor carries more queue pairs than the driver scales to —
	// "too many RDMA connections ... trigger the scalability bottleneck
	// within the network driver" (§6.3).
	QPThreshold int
	QPExtraNs   float64

	// ShardFixedNs is request detection + decode + response posting on the
	// single shard thread; ShardGetNs / ShardPutNs add the table lookup and
	// out-of-place insert work (calibrated from live microbenchmarks).
	ShardFixedNs int64
	ShardGetNs   int64
	ShardPutNs   int64
	// ReplPostNs is the shard-side cost of posting one replication RDMA
	// Write (§5.2); the NIC time is charged on the NIC resource.
	ReplPostNs int64
	// SecApplyNs is the secondary's processing per record (strict mode's
	// round trip waits for it; logging mode overlaps it).
	SecApplyNs int64

	// ClientThinkNs covers encode + cache lookup between operations.
	ClientThinkNs int64

	// SubShardDemuxNs is the per-request hand-off when the sub-sharding
	// extension is on: the instance's connection-polling thread routes the
	// request to an independent sub-shard core (§6.3's proposed mitigation
	// for the QP-count bottleneck).
	SubShardDemuxNs int64

	// NUMAPenaltyNs is added to every shard memory operation when NUMA
	// awareness is disabled (memory interleaved across nodes instead of
	// confined to the shard's domain, §4.1.2).
	NUMAPenaltyNs int64

	// SendRecvServerNs / SendRecvClientNs are the extra two-sided costs
	// (receive posting, completion handling) versus polled RDMA Write
	// message passing (§4.2.1/Fig. 10 ablation).
	SendRecvServerNs int64
	SendRecvClientNs int64

	// Pipelined execution model (§6.2.1/Fig. 5a ablation).
	PipeDispatchNs int64 // I/O thread per-request polling + enqueue
	PipeHandoffNs  int64 // queue + worker wakeup latency
	PipeWorkerNs   int64 // worker-side dequeue + response hand-back
	PipeLockNs     int64 // mutex + cache-line bouncing inside the store section

	// TCP/IPoIB transport for Memcached/Redis baselines.
	TCPExtraNs  int64   // kernel crossing + protocol per message, each way
	TCPByteNs   float64 // per-byte including copies
	KernelNs    int64   // server-side kernel receive/send CPU per request
	MCWorkerNs  int64   // memcached worker processing (hash, LRU, locks)
	MCWorkers   int     // memcached worker threads (paper: 8)
	RedisProcNs int64   // redis single-threaded command processing
	RedisShards int     // redis instances (paper: 8)

	// RAMCloud baseline: dispatch + worker over native verbs Send/Recv.
	RCDispatchNs int64
	RCWorkerNs   int64
	RCWorkers    int

	// Fleet-scale control-plane costs (cmd/hydrasim scenarios). The data
	// plane above is per-op; these parameterize the events that only matter
	// at 100+ machines: SWAT promotions, routing-table refreshes, and lease
	// renewals.

	// PromoteFixedNs is the SWAT promotion handshake per failed shard
	// (election message + secondary freeze), and PromotePerRecNs the
	// per-record replication-ring drain during promotion; both calibrated
	// against the chaos harness's measured 1.0–7.5 ms time-to-recover.
	PromoteFixedNs  int64
	PromotePerRecNs int64
	// SwatParallel is how many promotions the SWAT drives concurrently —
	// the serialization knob behind correlated-failure promotion storms.
	SwatParallel int
	// TableRefreshNs is a client's routing-table refresh round trip after a
	// WrongShard bounce (coordinator fetch + ring rebuild).
	TableRefreshNs int64
	// RenewNs is the shard CPU charged per lease renewal message — the unit
	// cost of a renewal thundering herd.
	RenewNs int64
}

// DefaultCostModel returns the calibrated testbed.
func DefaultCostModel() CostModel {
	return CostModel{
		WireNs:      900,
		NICOpNs:     70,
		NICByteNs:   0.2,
		QPThreshold: 300,
		QPExtraNs:   0.25,

		ShardFixedNs: 600,
		ShardGetNs:   250,
		ShardPutNs:   1100,
		ReplPostNs:   250,
		SecApplyNs:   500,

		ClientThinkNs: 200,

		SubShardDemuxNs: 180,
		NUMAPenaltyNs:   400,

		SendRecvServerNs: 1300,
		SendRecvClientNs: 900,

		PipeDispatchNs: 450,
		PipeHandoffNs:  1600,
		PipeWorkerNs:   350,
		PipeLockNs:     700,

		TCPExtraNs:  32000,
		TCPByteNs:   0.6,
		KernelNs:    8000,
		MCWorkerNs:  2200,
		MCWorkers:   8,
		RedisProcNs: 1500,
		RedisShards: 8,

		RCDispatchNs: 900,
		RCWorkerNs:   2500,
		RCWorkers:    7,

		PromoteFixedNs:  1_200_000, // ~1.2 ms: low end of measured chaos recovery
		PromotePerRecNs: 2_000,
		SwatParallel:    4,
		TableRefreshNs:  25_000,
		RenewNs:         400,
	}
}
