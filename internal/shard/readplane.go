// The parallel read plane (DESIGN.md §13): with Config.ReaderThreads > 0 the
// shard runs N reader goroutines that poll disjoint subsets of the
// connection mailboxes and serve OpGet directly with guardian-validated
// probes (kv.ProbeGet), plus definitive OpRenewLease rejections. Everything
// else — mutations, chained buckets, torn probes, lease renewals — is handed
// to the shard loop over a synchronous channel, so the store keeps exactly
// one mutator and the §4.1.1 ownership discipline holds.
//
// Ordering guarantee: connection i belongs to reader i%N, and that reader
// writes every response for its connections — including fallback responses,
// which it forwards and then waits for — so per-connection FIFO and the
// mailbox single-writer cursor protocol are preserved exactly as in the
// single-loop shard.
package shard

import (
	"fmt"
	"sync"

	"hydradb/internal/invariant"
	"hydradb/internal/kv"
	"hydradb/internal/message"
)

// fallbackReq is the reusable per-reader handoff cell for requests the read
// plane cannot serve. The reader fills body/epoch, sends the cell to the
// shard loop, and blocks on done; the loop runs the ordinary handle() into
// resp and signals back. Strict alternation means zero allocation and at
// most one outstanding fallback per reader.
type fallbackReq struct {
	body  []byte // request bytes, aliasing the mailbox slot (not yet consumed)
	epoch uint32 // routing epoch the reader judged the request against
	resp  []byte // reader-owned response buffer, filled by the shard loop
	n     int    // response length
	done  chan struct{}
}

// runReadPlane is the shard loop in read-plane mode: it owns the store and
// serves only fallback traffic and reclamation, while the readers own the
// mailboxes. Runs on the Run goroutine (ownership already acquired).
func (s *Shard) runReadPlane() {
	nReaders := s.cfg.ReaderThreads
	gate := kv.NewReadGate(nReaders)
	s.store.AttachReadGate(gate)
	fallback := make(chan *fallbackReq, nReaders)
	readersDone := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < nReaders; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			// Registered after the Done defer: deregistration (LIFO) runs
			// first, so once wg.Wait returns the registry entry is gone.
			spawnDone := invariant.Spawned(fmt.Sprintf("shard/%p/reader/%d", s, idx))
			defer spawnDone()
			s.readLoop(idx, nReaders, gate.Slot(idx), fallback)
		}(i)
	}
	go func() {
		wg.Wait()
		close(readersDone)
	}()

	back := s.newBackoff()
	handledSinceReclaim := 0
	for {
		select {
		case <-s.stop:
			// Readers exit at their next loop top; keep serving fallbacks
			// they may already be blocked on until every reader is gone,
			// then let Run close stopped.
			for {
				select {
				case freq := <-fallback:
					freq.n = s.handle(freq.body, freq.resp, freq.epoch)
					freq.done <- struct{}{}
				case <-readersDone:
					return
				}
			}
		case freq := <-fallback:
			freq.n = s.handle(freq.body, freq.resp, freq.epoch)
			freq.done <- struct{}{}
			handledSinceReclaim++
			if handledSinceReclaim >= s.cfg.ReclaimEvery {
				s.store.ReclaimDue()
				handledSinceReclaim = 0
			}
			back.reset()
		default:
			if back.idle() {
				s.store.ReclaimDue()
			}
		}
	}
}

// readLoop is one reader goroutine: it polls connections idx, idx+stride, …
// and retires every request on them, either directly or via fallback.
func (s *Shard) readLoop(idx, stride int, slot *kv.ReadSlot, fallback chan<- *fallbackReq) {
	freq := &fallbackReq{
		resp: make([]byte, s.cfg.MailboxBytes),
		done: make(chan struct{}, 1),
	}
	back := s.newBackoff()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		progress := false
		epoch := s.epoch.Load()
		conns := *s.conns.Load()
		for ci := idx; ci < len(conns); ci += stride {
			n := s.drainConnRead(conns[ci], freq, slot, epoch, fallback)
			if n > 0 {
				progress = true
				s.Handled.Add(int64(n))
			}
		}
		if progress {
			back.reset()
			continue
		}
		back.idle()
	}
}

// drainConnRead is the reader-side twin of drainConn: same batching, same
// consume-before-respond slot recycling, but requests route through
// serveRead.
//
// hydralint:hotpath
func (s *Shard) drainConnRead(c *conn, freq *fallbackReq, slot *kv.ReadSlot, epoch uint32, fallback chan<- *fallbackReq) int {
	handled := 0
	if c.sendRecv {
		for handled < c.respBox.Depth() {
			body, ok := c.qp.TryRecv()
			if !ok {
				break
			}
			n := s.serveRead(body, freq, slot, epoch, fallback)
			//hydralint:ignore error-discipline response to a vanished client; nothing to do but serve the next mailbox
			_ = c.qp.Send(freq.resp[:n])
			handled++
		}
		return handled
	}
	for handled < c.reqBox.Depth() {
		body, seq, ok := c.reqBox.Poll()
		if !ok {
			break
		}
		n := s.serveRead(body, freq, slot, epoch, fallback)
		c.reqBox.Consume()
		//hydralint:ignore error-discipline response to a vanished client; nothing to do but serve the next mailbox
		_ = c.respBox.WriteVia(c.qp, freq.resp[:n], seq)
		handled++
	}
	return handled
}

// serveRead retires one request: pure reads are answered from the probe
// surface, everything else goes through the fallback handoff. The response
// is always left in freq.resp.
//
// hydralint:hotpath
func (s *Shard) serveRead(body []byte, freq *fallbackReq, slot *kv.ReadSlot, epoch uint32, fallback chan<- *fallbackReq) int {
	req, err := message.DecodeRequest(body)
	if err != nil {
		resp := message.Response{Epoch: epoch, Status: message.StatusError}
		return resp.EncodeTo(freq.resp)
	}
	if req.Epoch != epoch {
		resp := message.Response{Epoch: epoch, Seq: req.Seq, Status: message.StatusWrongShard}
		return resp.EncodeTo(freq.resp)
	}
	if req.Op == message.OpGet || req.Op == message.OpRenewLease {
		if n, ok := s.tryProbe(req, freq, slot, epoch); ok {
			return n
		}
	}
	// Mutations, chained buckets, torn probes, renewals of live leases: the
	// single-writer shard loop. The reader blocks — at most one fallback in
	// flight per reader — which preserves per-connection response order.
	freq.body = body
	freq.epoch = epoch
	fallback <- freq
	<-freq.done
	s.Counters.ReadPlaneFallbacks.Inc()
	return freq.n
}

// tryProbe answers OpGet (hit or definitive miss) and OpRenewLease
// definitive rejections from the probe surface. ok=false defers to the
// shard loop. A torn probe — one that raced a slot flip or detach — is
// retried once: the store settles in a handful of instructions, so a second
// probe usually serves the request without burdening the shard loop.
//
// hydralint:hotpath
func (s *Shard) tryProbe(req message.Request, freq *fallbackReq, slot *kv.ReadSlot, epoch uint32) (int, bool) {
	wantVal := req.Op == message.OpGet
	for attempt := 0; attempt < 2; attempt++ {
		n := 0
		st := s.store.ProbeGet(slot, req.Key, func(val []byte, ptr kv.RemotePtr, leaseExp int64) {
			if !wantVal {
				return
			}
			// Encode inside the probe section: val aliases the arena and is
			// only pinned until ProbeGet returns.
			resp := message.Response{
				Epoch:    epoch,
				Seq:      req.Seq,
				Status:   message.StatusOK,
				Val:      val,
				LeaseExp: leaseExp,
				Ptr:      ptr,
			}
			resp.Ptr.ShardID = s.id
			n = resp.EncodeTo(freq.resp)
		})
		switch st {
		case kv.ProbeHit:
			if !wantVal {
				// The key exists: renewing its lease mutates the lease word
				// and popularity, which only the shard loop may do.
				return 0, false
			}
			s.Counters.ReadPlaneHits.Inc()
			s.Counters.Gets.Inc()
			return n, true
		case kv.ProbeMiss:
			s.Counters.ReadPlaneHits.Inc()
			if wantVal {
				s.Counters.Gets.Inc()
			} else {
				s.Counters.LeaseRejects.Inc()
			}
			resp := message.Response{Epoch: epoch, Seq: req.Seq, Status: message.StatusNotFound}
			return resp.EncodeTo(freq.resp), true
		case kv.ProbeTorn:
			s.Counters.ReadPlaneTorn.Inc()
		case kv.ProbeFallback:
			return 0, false
		}
	}
	return 0, false
}
